//! Cross-validation: transcripts produced by the real CDCL solver must be
//! accepted by the independent checker, and mutations of them rejected.
//!
//! These tests are the contract between `alive-sat`'s proof logging and
//! `alive-proof`'s checking: every Unsat answer the solver gives without
//! assumptions must come with a transcript the checker accepts.

use alive_proof::{check_refutation, CheckError, Step};
use alive_sat::{ProofEvent, SharedDratRecorder, SolveResult, Solver, Var};

/// Converts a solver transcript into checker steps.
fn to_steps(events: &[ProofEvent]) -> Vec<Step> {
    events
        .iter()
        .map(|e| match e {
            ProofEvent::Original(c) => Step::Add(c.clone()),
            ProofEvent::Learned(c) => Step::Learn(c.clone()),
            ProofEvent::Deleted(c) => Step::Delete(c.clone()),
        })
        .collect()
}

/// Builds a solver with proof logging installed.
fn logging_solver() -> (Solver, SharedDratRecorder) {
    let handle = SharedDratRecorder::new();
    let mut solver = Solver::new();
    solver.set_proof_logger(Some(Box::new(handle.clone())));
    (solver, handle)
}

/// Encodes the pigeonhole principle PHP(n+1, n) — always unsatisfiable.
fn pigeonhole(solver: &mut Solver, pigeons: usize, holes: usize) {
    let vars: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| solver.new_var()).collect())
        .collect();
    for row in &vars {
        solver.add_clause(row.iter().map(|v| v.positive()));
    }
    for i in 0..pigeons {
        for k in (i + 1)..pigeons {
            for (a, b) in vars[i].iter().zip(&vars[k]) {
                solver.add_clause([a.negative(), b.negative()]);
            }
        }
    }
}

#[test]
fn pigeonhole_transcripts_check() {
    for n in 2..=5 {
        let (mut solver, handle) = logging_solver();
        pigeonhole(&mut solver, n + 1, n);
        assert_eq!(solver.solve(), SolveResult::Unsat, "php({}, {n})", n + 1);
        let steps = to_steps(&handle.snapshot());
        let num_vars = solver.num_vars();
        let report = check_refutation(num_vars, &steps)
            .unwrap_or_else(|e| panic!("php({}, {n}) transcript rejected: {e}", n + 1));
        assert!(report.learned_checked >= 1);
    }
}

/// A deterministic xorshift generator, so the random-CNF sweep needs no
/// external crates and reproduces exactly.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[test]
fn random_unsat_cnf_transcripts_check() {
    // Random 3-CNF at clause/variable ratio ~5.2 is almost always unsat;
    // check every instance the solver refutes.
    let mut rng = XorShift(0x5eed_cafe_f00d_1234);
    let mut refuted = 0;
    for _ in 0..40 {
        let num_vars = 12 + rng.below(8) as usize;
        let num_clauses = num_vars * 26 / 5;
        let (mut solver, handle) = logging_solver();
        let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
        for _ in 0..num_clauses {
            let mut clause = Vec::with_capacity(3);
            for _ in 0..3 {
                let v = vars[rng.below(num_vars as u64) as usize];
                clause.push(v.lit(rng.below(2) == 0));
            }
            if !solver.add_clause(clause) {
                break;
            }
        }
        match solver.solve() {
            SolveResult::Unsat => {
                refuted += 1;
                let steps = to_steps(&handle.snapshot());
                check_refutation(num_vars, &steps)
                    .unwrap_or_else(|e| panic!("random transcript rejected: {e}"));
            }
            SolveResult::Sat => {
                assert!(!handle.has_refutation());
            }
            SolveResult::Unknown => unreachable!("no budget configured"),
        }
    }
    assert!(refuted >= 10, "only {refuted} unsat instances; weak test");
}

#[test]
fn incremental_transcripts_check() {
    // Clauses added between solve calls land in the same transcript, and
    // the final refutation covers the accumulated formula.
    let (mut solver, handle) = logging_solver();
    let a = solver.new_var();
    let b = solver.new_var();
    let c = solver.new_var();
    solver.add_clause([a.positive(), b.positive()]);
    solver.add_clause([a.negative(), c.positive()]);
    assert_eq!(solver.solve(), SolveResult::Sat);
    solver.add_clause([b.negative()]);
    assert_eq!(solver.solve(), SolveResult::Sat);
    solver.add_clause([c.negative()]);
    assert_eq!(solver.solve(), SolveResult::Unsat);
    let steps = to_steps(&handle.snapshot());
    assert!(check_refutation(solver.num_vars(), &steps).is_ok());
}

#[test]
fn mutated_solver_transcripts_are_rejected() {
    let (mut solver, handle) = logging_solver();
    pigeonhole(&mut solver, 5, 4);
    assert_eq!(solver.solve(), SolveResult::Unsat);
    let steps = to_steps(&handle.snapshot());
    let num_vars = solver.num_vars();
    assert!(check_refutation(num_vars, &steps).is_ok());

    // Removing the final empty clause always leaves no refutation.
    let mut no_refutation = steps.clone();
    let last_learn = no_refutation
        .iter()
        .rposition(|s| matches!(s, Step::Learn(c) if c.is_empty()))
        .expect("refutation present");
    no_refutation.remove(last_learn);
    assert_eq!(
        check_refutation(num_vars, &no_refutation),
        Err(CheckError::NoRefutation)
    );

    // Flipping a literal of learned clauses must be caught for at least
    // some (in practice almost all) positions: either the flipped clause
    // stops being RUP, or a later step stops checking.
    let learned_positions: Vec<usize> = steps
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, Step::Learn(c) if !c.is_empty()))
        .map(|(i, _)| i)
        .collect();
    assert!(!learned_positions.is_empty());
    let mut rejected = 0;
    for &pos in &learned_positions {
        let mut mutated = steps.clone();
        if let Step::Learn(c) = &mut mutated[pos] {
            c[0] = -c[0];
        }
        if check_refutation(num_vars, &mutated).is_err() {
            rejected += 1;
        }
    }
    assert!(
        rejected * 2 > learned_positions.len(),
        "only {rejected}/{} flipped-literal mutants rejected",
        learned_positions.len()
    );

    // Dropping an axiom must be caught for at least some axioms.
    let axiom_positions: Vec<usize> = steps
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, Step::Add(_)))
        .map(|(i, _)| i)
        .collect();
    let mut rejected = 0;
    for &pos in &axiom_positions {
        let mut mutated = steps.clone();
        mutated.remove(pos);
        if check_refutation(num_vars, &mutated).is_err() {
            rejected += 1;
        }
    }
    assert!(rejected > 0, "dropping axioms never rejected");
}

#[test]
fn deletion_heavy_transcripts_check() {
    // Force clause-database reductions so Deleted events appear, then make
    // the formula unsat and validate the full transcript.
    let mut rng = XorShift(0xdead_beef_0bad_cafe);
    let (mut solver, handle) = logging_solver();
    let num_vars = 60;
    let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
    // A hard-ish satisfiable portion to generate learning and reduction…
    for _ in 0..num_vars * 4 {
        let mut clause = Vec::with_capacity(3);
        for _ in 0..3 {
            let v = vars[rng.below(num_vars as u64) as usize];
            clause.push(v.lit(rng.below(2) == 0));
        }
        if !solver.add_clause(clause) {
            break;
        }
    }
    let first = solver.solve();
    // …then pin every variable false, which contradicts some clause.
    if first != SolveResult::Unsat {
        for v in &vars {
            if !solver.add_clause([v.negative()]) {
                break;
            }
        }
    }
    assert_eq!(solver.solve(), SolveResult::Unsat);
    let steps = to_steps(&handle.snapshot());
    assert!(check_refutation(num_vars, &steps).is_ok());
}
