//! Refinement certificates: a checkable text format tying a DRAT-style
//! refutation to the query it answers.
//!
//! A certificate records *what* was proved (the transform, the concrete type
//! assignment, and which refinement condition — definedness, poison, value,
//! or memory — was discharged), the bit-blasted CNF the claim reduces to,
//! and the proof that the CNF is unsatisfiable. [`Certificate::check`]
//! re-verifies the proof with the independent checker in
//! [`crate::checker`]; [`Certificate::to_text`] and [`Certificate::parse`]
//! round-trip the whole thing through a line-oriented text format so
//! certificates can be written next to verification results and audited by
//! out-of-tree tools.
//!
//! # Format
//!
//! ```text
//! alive-proof certificate v1
//! transform: <name>
//! typing: <type assignment summary>
//! check: <which refinement condition>
//! vars: <number of CNF variables>
//! steps:
//! a 1 2 -3 0
//! l 2 0
//! d 1 2 -3 0
//! l 0
//! .
//! ```
//!
//! Step lines are `a` (axiom), `l` (learned, RUP-checked), or `d` (delete),
//! each a space-separated DIMACS clause terminated by `0`. The final line is
//! a lone `.`, which makes truncated files detectable.

use crate::checker::{check_refutation, CheckError, CheckReport, Step};
use std::fmt;

/// What a certificate's proof is *about*.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CertificateMeta {
    /// Name of the transform whose refinement was checked.
    pub transform: String,
    /// Human-readable summary of the concrete type assignment.
    pub typing: String,
    /// Which refinement condition the CNF encodes (e.g. `definedness`,
    /// `poison`, `value`, `memory`).
    pub check: String,
}

/// A self-contained, machine-checkable record that one refinement query
/// reduced to an unsatisfiable CNF, with the proof of unsatisfiability.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Certificate {
    /// What was proved.
    pub meta: CertificateMeta,
    /// Number of variables in the CNF (DIMACS `1..=num_vars`).
    pub num_vars: usize,
    /// The chronological proof, including the axioms (`Step::Add`).
    pub steps: Vec<Step>,
}

impl Certificate {
    /// Verifies the proof with the independent RUP checker.
    pub fn check(&self) -> Result<CheckReport, CheckError> {
        check_refutation(self.num_vars, &self.steps)
    }

    /// Number of axiom (`a`) steps, i.e. the size of the CNF refuted.
    pub fn num_axioms(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Add(_)))
            .count()
    }

    /// Serializes to the v1 text format.
    ///
    /// Metadata values have newlines replaced by spaces so the line-oriented
    /// format cannot be corrupted.
    pub fn to_text(&self) -> String {
        let clean = |s: &str| s.replace(['\n', '\r'], " ");
        let mut out = String::new();
        out.push_str("alive-proof certificate v1\n");
        out.push_str(&format!("transform: {}\n", clean(&self.meta.transform)));
        out.push_str(&format!("typing: {}\n", clean(&self.meta.typing)));
        out.push_str(&format!("check: {}\n", clean(&self.meta.check)));
        out.push_str(&format!("vars: {}\n", self.num_vars));
        out.push_str("steps:\n");
        for step in &self.steps {
            let (tag, lits) = match step {
                Step::Add(c) => ('a', c),
                Step::Learn(c) => ('l', c),
                Step::Delete(c) => ('d', c),
            };
            out.push(tag);
            for l in lits {
                out.push(' ');
                out.push_str(&l.to_string());
            }
            out.push_str(" 0\n");
        }
        out.push_str(".\n");
        out
    }

    /// Parses the v1 text format produced by [`Certificate::to_text`].
    pub fn parse(text: &str) -> Result<Certificate, ParseError> {
        let mut lines = text.lines().enumerate();
        let mut next = |expect: &'static str| -> Result<(usize, &str), ParseError> {
            lines
                .next()
                .ok_or(ParseError::Truncated { expected: expect })
        };
        let (_, magic) = next("magic line")?;
        if magic != "alive-proof certificate v1" {
            return Err(ParseError::BadMagic);
        }
        let mut header = |key: &'static str| -> Result<String, ParseError> {
            let (line_no, line) = next(key)?;
            let prefix = format!("{key}:");
            match line.strip_prefix(&prefix) {
                Some(rest) => Ok(rest.trim().to_string()),
                None => Err(ParseError::BadHeader {
                    line: line_no + 1,
                    expected: key,
                }),
            }
        };
        let transform = header("transform")?;
        let typing = header("typing")?;
        let check = header("check")?;
        let vars_text = header("vars")?;
        let num_vars: usize = vars_text.parse().map_err(|_| ParseError::BadVarCount)?;
        let (line_no, steps_line) = next("steps header")?;
        if steps_line != "steps:" {
            return Err(ParseError::BadHeader {
                line: line_no + 1,
                expected: "steps",
            });
        }

        let mut steps = Vec::new();
        let mut terminated = false;
        for (line_no, line) in lines.by_ref() {
            if line == "." {
                terminated = true;
                break;
            }
            let line_no = line_no + 1;
            let mut tokens = line.split_ascii_whitespace();
            let tag = tokens.next().ok_or(ParseError::BadStep { line: line_no })?;
            let mut lits: Vec<i32> = Vec::new();
            let mut saw_zero = false;
            for tok in tokens {
                if saw_zero {
                    return Err(ParseError::BadStep { line: line_no });
                }
                let v: i32 = tok
                    .parse()
                    .map_err(|_| ParseError::BadStep { line: line_no })?;
                if v == 0 {
                    saw_zero = true;
                } else {
                    lits.push(v);
                }
            }
            if !saw_zero {
                return Err(ParseError::BadStep { line: line_no });
            }
            steps.push(match tag {
                "a" => Step::Add(lits),
                "l" => Step::Learn(lits),
                "d" => Step::Delete(lits),
                _ => return Err(ParseError::BadStep { line: line_no }),
            });
        }
        if !terminated {
            return Err(ParseError::Truncated {
                expected: "terminating '.'",
            });
        }
        if let Some((line_no, line)) = lines.next() {
            if !line.trim().is_empty() {
                return Err(ParseError::TrailingData { line: line_no + 1 });
            }
        }
        Ok(Certificate {
            meta: CertificateMeta {
                transform,
                typing,
                check,
            },
            num_vars,
            steps,
        })
    }
}

/// Why a certificate file failed to parse.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// The first line is not the v1 magic string.
    BadMagic,
    /// A header line is missing or malformed.
    BadHeader {
        /// 1-based line number.
        line: usize,
        /// The header key that was expected.
        expected: &'static str,
    },
    /// The `vars:` header is not a number.
    BadVarCount,
    /// A step line is malformed (unknown tag, bad integer, or missing the
    /// trailing `0`).
    BadStep {
        /// 1-based line number.
        line: usize,
    },
    /// The file ended before the terminating `.`.
    Truncated {
        /// What was expected next.
        expected: &'static str,
    },
    /// Non-empty content after the terminating `.`.
    TrailingData {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadMagic => write!(f, "not an alive-proof v1 certificate"),
            ParseError::BadHeader { line, expected } => {
                write!(f, "line {line}: expected '{expected}:' header")
            }
            ParseError::BadVarCount => write!(f, "vars: header is not a number"),
            ParseError::BadStep { line } => write!(f, "line {line}: malformed proof step"),
            ParseError::Truncated { expected } => {
                write!(f, "certificate truncated: missing {expected}")
            }
            ParseError::TrailingData { line } => {
                write!(f, "line {line}: unexpected content after terminator")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Certificate {
        Certificate {
            meta: CertificateMeta {
                transform: "AddSub:1164".to_string(),
                typing: "i8".to_string(),
                check: "value".to_string(),
            },
            num_vars: 2,
            steps: vec![
                Step::Add(vec![1, 2]),
                Step::Add(vec![-1, 2]),
                Step::Add(vec![1, -2]),
                Step::Add(vec![-1, -2]),
                Step::Learn(vec![2]),
                Step::Learn(vec![]),
            ],
        }
    }

    #[test]
    fn round_trips_through_text() {
        let cert = sample();
        let text = cert.to_text();
        let parsed = Certificate::parse(&text).unwrap();
        assert_eq!(parsed, cert);
        assert!(parsed.check().is_ok());
        assert_eq!(parsed.num_axioms(), 4);
    }

    #[test]
    fn newlines_in_metadata_cannot_break_format() {
        let mut cert = sample();
        cert.meta.transform = "evil\nname".to_string();
        let parsed = Certificate::parse(&cert.to_text()).unwrap();
        assert_eq!(parsed.meta.transform, "evil name");
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(
            Certificate::parse("drat proof\n"),
            Err(ParseError::BadMagic)
        );
    }

    #[test]
    fn rejects_truncation() {
        let text = sample().to_text();
        let cut = &text[..text.len() - 3]; // drop the ".\n" terminator region
        assert!(matches!(
            Certificate::parse(cut),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_step_without_terminator() {
        let text = sample().to_text().replace("l 2 0", "l 2");
        assert!(matches!(
            Certificate::parse(&text),
            Err(ParseError::BadStep { .. })
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut text = sample().to_text();
        text.push_str("extra\n");
        assert!(matches!(
            Certificate::parse(&text),
            Err(ParseError::TrailingData { .. })
        ));
    }

    #[test]
    fn mutated_certificate_is_rejected_by_checker() {
        // Dropping the final empty clause leaves no refutation.
        let mut cert = sample();
        cert.steps.pop();
        assert_eq!(cert.check(), Err(CheckError::NoRefutation));
        // Dropping an axiom the learned unit depends on breaks RUP.
        let mut cert = sample();
        cert.steps.remove(1); // (-1, 2)
        assert!(matches!(cert.check(), Err(CheckError::NotRup { .. })));
    }
}
