//! Machine-checkable refinement certificates for the `alive-rs` stack.
//!
//! The verifier in this workspace answers "does the optimized instruction
//! sequence refine the original?" by bit-blasting the refinement conditions
//! of *Provably Correct Peephole Optimizations with Alive* (PLDI 2015) to
//! CNF and running a CDCL SAT solver. A `Valid` verdict therefore rests on
//! the solver being bug-free — an uncomfortable place for a tool whose whole
//! purpose is to remove trust from hand-reasoned compiler transforms.
//!
//! This crate removes the solver from the trusted base. The solver, when
//! asked (see `alive_sat::Solver::set_proof_logger`), emits a DRAT-style
//! transcript of its run: the original clauses, every clause it learned, and
//! every clause it deleted. For unsatisfiable formulas the transcript ends
//! with the empty clause and constitutes a *refutation proof* that this
//! crate re-checks from scratch:
//!
//! * [`checker`] implements reverse-unit-propagation (RUP) checking with its
//!   own clause store and its own two-watched-literal propagation — no code,
//!   no types, and no dependencies are shared with `alive-sat` (this crate
//!   deliberately has zero dependencies).
//! * [`certificate`] wraps a proof in a [`Certificate`]: metadata naming the
//!   transform, the concrete type assignment, and the refinement condition
//!   that was discharged, plus the CNF and the proof, with a text
//!   serialization that round-trips and detects truncation.
//!
//! The result: a `Valid` verdict can ship with a certificate, and accepting
//! the verdict requires trusting only this small checker (and the
//! bit-blaster's encoding), not the far larger search-optimized solver.
//!
//! # Example
//!
//! ```
//! use alive_proof::{check_refutation, Step};
//!
//! // (x ∨ y) ∧ (¬x ∨ y) ∧ (x ∨ ¬y) ∧ (¬x ∨ ¬y) is unsatisfiable.
//! let steps = vec![
//!     Step::Add(vec![1, 2]),
//!     Step::Add(vec![-1, 2]),
//!     Step::Add(vec![1, -2]),
//!     Step::Add(vec![-1, -2]),
//!     Step::Learn(vec![2]),
//!     Step::Learn(vec![]),
//! ];
//! assert!(check_refutation(2, &steps).is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod certificate;
pub mod checker;

pub use certificate::{Certificate, CertificateMeta, ParseError};
pub use checker::{check_refutation, CheckError, CheckReport, Step};
