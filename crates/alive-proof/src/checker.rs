//! The independent RUP/DRAT refutation checker.
//!
//! This module re-verifies unsatisfiability transcripts produced by the
//! `alive-sat` solver without sharing any code with it: it has its own
//! clause representation, its own two-watched-literal unit propagation, and
//! its own notion of literals (plain DIMACS `i32`s). A bug in the solver's
//! propagation or conflict analysis therefore cannot silently vouch for
//! itself — the transcript has to convince a second, independent engine.
//!
//! A proof is a chronological sequence of [`Step`]s:
//!
//! * [`Step::Add`] introduces an axiom of the formula under refutation. It
//!   is not checked (axioms are given), only recorded.
//! * [`Step::Learn`] introduces a derived clause, which must be RUP —
//!   *reverse unit propagation*: asserting the negation of every literal and
//!   unit-propagating over all currently active clauses must yield a
//!   conflict. An empty `Learn` step concludes the refutation.
//! * [`Step::Delete`] removes a clause (matched up to literal order). The
//!   clause must exist; deleting an unknown clause is an error, which is
//!   what makes mutated transcripts detectable.
//!
//! Checking is *forward*: each step is verified against the clauses active
//! at that point, so reordering dependent steps or dropping a clause an
//! inference relied on breaks the proof. Deleting a clause never threatens
//! soundness — it only removes propagation power — and, following standard
//! DRAT-checker practice, unit-clause deletions leave their top-level
//! assignment in place (the deleted clause is still entailed by the
//! formula, so everything derived from it remains entailed).

use std::fmt;

/// One step of a refutation proof, in DIMACS literals.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Step {
    /// An axiom clause of the formula being refuted (not checked).
    Add(Vec<i32>),
    /// A derived clause; must be RUP with respect to the active clause set.
    /// The empty clause concludes the refutation.
    Learn(Vec<i32>),
    /// Removal of an existing clause, matched up to literal order.
    Delete(Vec<i32>),
}

impl Step {
    /// The clause payload of this step.
    pub fn lits(&self) -> &[i32] {
        match self {
            Step::Add(c) | Step::Learn(c) | Step::Delete(c) => c,
        }
    }
}

/// Statistics of a successful check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Total steps processed.
    pub steps: usize,
    /// Number of `Learn` steps whose RUP property was verified.
    pub learned_checked: usize,
    /// Number of clauses deleted.
    pub deleted: usize,
    /// Literal propagations performed while checking.
    pub propagations: u64,
}

/// Why a proof was rejected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckError {
    /// A step mentions literal 0 or a variable beyond the declared count.
    LitOutOfRange {
        /// Index of the offending step.
        step: usize,
        /// The offending literal.
        lit: i32,
    },
    /// A `Learn` step is not a reverse-unit-propagation consequence of the
    /// clauses active before it.
    NotRup {
        /// Index of the offending step.
        step: usize,
    },
    /// A `Delete` step names a clause that is not currently active.
    DeleteMissing {
        /// Index of the offending step.
        step: usize,
    },
    /// The proof ran to completion without deriving the empty clause.
    NoRefutation,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::LitOutOfRange { step, lit } => {
                write!(f, "step {step}: literal {lit} out of range")
            }
            CheckError::NotRup { step } => {
                write!(f, "step {step}: clause is not a RUP consequence")
            }
            CheckError::DeleteMissing { step } => {
                write!(f, "step {step}: deleted clause is not active")
            }
            CheckError::NoRefutation => {
                write!(f, "proof ends without deriving the empty clause")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Checks that `steps` refutes the conjunction of its `Add` clauses.
///
/// Returns a [`CheckReport`] if every `Learn` step is RUP, every `Delete`
/// step removes an active clause, and the empty clause is derived.
pub fn check_refutation(num_vars: usize, steps: &[Step]) -> Result<CheckReport, CheckError> {
    let mut checker = RupChecker::new(num_vars);
    let mut report = CheckReport::default();
    let mut refuted = false;
    for (idx, step) in steps.iter().enumerate() {
        for &l in step.lits() {
            if l == 0 || l.unsigned_abs() as usize > num_vars {
                return Err(CheckError::LitOutOfRange { step: idx, lit: l });
            }
        }
        match step {
            Step::Add(c) => checker.add_active(c.clone()),
            Step::Learn(c) => {
                if !checker.is_rup(c) {
                    return Err(CheckError::NotRup { step: idx });
                }
                report.learned_checked += 1;
                if c.is_empty() {
                    refuted = true;
                }
                checker.add_active(c.clone());
            }
            Step::Delete(c) => {
                if !checker.delete(c) {
                    return Err(CheckError::DeleteMissing { step: idx });
                }
                report.deleted += 1;
            }
        }
        report.steps += 1;
    }
    report.propagations = checker.propagations;
    if refuted {
        Ok(report)
    } else {
        Err(CheckError::NoRefutation)
    }
}

#[derive(Clone, Debug)]
struct ClauseRec {
    lits: Vec<i32>,
    active: bool,
}

/// Dense index of a DIMACS literal: `2 * (|l| - 1) + (l < 0)`.
#[inline]
fn code(l: i32) -> usize {
    ((l.unsigned_abs() as usize - 1) << 1) | (l < 0) as usize
}

/// A clause store with two-watched-literal propagation over DIMACS `i32`
/// literals, independent of the solver's internals.
#[derive(Debug)]
struct RupChecker {
    clauses: Vec<ClauseRec>,
    /// `watches[code(l)]` holds indices of clauses in which `l` is watched.
    watches: Vec<Vec<usize>>,
    /// Per-variable assignment: 1 true, -1 false, 0 unassigned.
    assign: Vec<i8>,
    trail: Vec<i32>,
    qhead: usize,
    /// The active set is contradictory by top-level propagation alone; every
    /// RUP query is then trivially a consequence.
    top_conflict: bool,
    propagations: u64,
}

impl RupChecker {
    fn new(num_vars: usize) -> RupChecker {
        RupChecker {
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * num_vars],
            assign: vec![0; num_vars],
            trail: Vec::new(),
            qhead: 0,
            top_conflict: false,
            propagations: 0,
        }
    }

    #[inline]
    fn value(&self, l: i32) -> i8 {
        let a = self.assign[l.unsigned_abs() as usize - 1];
        if l > 0 {
            a
        } else {
            -a
        }
    }

    #[inline]
    fn assign_true(&mut self, l: i32) {
        self.assign[l.unsigned_abs() as usize - 1] = if l > 0 { 1 } else { -1 };
        self.trail.push(l);
    }

    /// Unit propagation from the current queue head. Returns `true` on
    /// conflict (leaving the queue drained).
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let falsified = -p;
            let wcode = code(falsified);
            let mut ws = std::mem::take(&mut self.watches[wcode]);
            let mut i = 0;
            let mut conflict = false;
            'outer: while i < ws.len() {
                let ci = ws[i];
                if !self.clauses[ci].active {
                    ws.swap_remove(i);
                    continue;
                }
                // Normalize: the falsified watch goes to slot 1.
                {
                    let lits = &mut self.clauses[ci].lits;
                    if lits[0] == falsified {
                        lits.swap(0, 1);
                    }
                }
                let other = self.clauses[ci].lits[0];
                if self.value(other) == 1 {
                    i += 1;
                    continue;
                }
                let len = self.clauses[ci].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci].lits[k];
                    if self.value(lk) != -1 {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[code(lk)].push(ci);
                        ws.swap_remove(i);
                        continue 'outer;
                    }
                }
                // Unit or conflicting.
                i += 1;
                if self.value(other) == -1 {
                    conflict = true;
                    break;
                }
                self.assign_true(other);
            }
            self.watches[wcode] = ws;
            if conflict {
                self.qhead = self.trail.len();
                return true;
            }
        }
        false
    }

    /// Installs a clause into the active set, propagating any consequence
    /// at the top level. The clause is assumed already verified (or an
    /// axiom).
    fn add_active(&mut self, lits: Vec<i32>) {
        let ci = self.clauses.len();
        match lits.len() {
            0 => {
                self.clauses.push(ClauseRec { lits, active: true });
                self.top_conflict = true;
            }
            1 => {
                let l = lits[0];
                self.clauses.push(ClauseRec { lits, active: true });
                match self.value(l) {
                    1 => {}
                    -1 => self.top_conflict = true,
                    _ => {
                        self.assign_true(l);
                        if self.propagate() {
                            self.top_conflict = true;
                        }
                    }
                }
            }
            _ => {
                let mut lits = lits;
                // Move up to two non-false literals to the watch slots.
                let mut found = 0;
                for k in 0..lits.len() {
                    if self.value(lits[k]) != -1 {
                        lits.swap(found, k);
                        found += 1;
                        if found == 2 {
                            break;
                        }
                    }
                }
                let (w0, w1) = (lits[0], lits[1]);
                self.clauses.push(ClauseRec { lits, active: true });
                self.watches[code(w0)].push(ci);
                self.watches[code(w1)].push(ci);
                match found {
                    0 => self.top_conflict = true,
                    1 if self.value(w0) == 0 => {
                        // Unit under the top-level assignment.
                        self.assign_true(w0);
                        if self.propagate() {
                            self.top_conflict = true;
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Is `lits` a reverse-unit-propagation consequence of the active set?
    ///
    /// Temporarily asserts the negation of every literal, propagates, and
    /// restores the top-level state before returning.
    fn is_rup(&mut self, lits: &[i32]) -> bool {
        if self.top_conflict {
            return true;
        }
        let mark = self.trail.len();
        debug_assert_eq!(self.qhead, mark, "top level must be fully propagated");
        let mut conflict = false;
        for &l in lits {
            match self.value(l) {
                // `l` is already entailed, so the clause is too: asserting
                // `-l` conflicts immediately. Also covers tautologies.
                1 => {
                    conflict = true;
                    break;
                }
                -1 => {} // negation already holds
                _ => self.assign_true(-l),
            }
        }
        if !conflict {
            conflict = self.propagate();
        }
        for idx in mark..self.trail.len() {
            let l = self.trail[idx];
            self.assign[l.unsigned_abs() as usize - 1] = 0;
        }
        self.trail.truncate(mark);
        self.qhead = mark;
        conflict
    }

    /// Deactivates the most recently added active clause equal to `lits` up
    /// to literal order. Returns `false` if no such clause exists.
    fn delete(&mut self, lits: &[i32]) -> bool {
        let mut target: Vec<i32> = lits.to_vec();
        target.sort_unstable();
        // Scan newest-first: deletions overwhelmingly target recent learnts.
        for ci in (0..self.clauses.len()).rev() {
            if !self.clauses[ci].active || self.clauses[ci].lits.len() != target.len() {
                continue;
            }
            let mut sorted = self.clauses[ci].lits.clone();
            sorted.sort_unstable();
            if sorted == target {
                self.clauses[ci].active = false;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(lits: &[i32]) -> Step {
        Step::Add(lits.to_vec())
    }
    fn l(lits: &[i32]) -> Step {
        Step::Learn(lits.to_vec())
    }
    fn d(lits: &[i32]) -> Step {
        Step::Delete(lits.to_vec())
    }

    #[test]
    fn accepts_unit_contradiction() {
        let steps = [a(&[1]), a(&[-1]), l(&[])];
        let report = check_refutation(1, &steps).unwrap();
        assert_eq!(report.learned_checked, 1);
    }

    #[test]
    fn accepts_resolution_chain() {
        // (x|y) & (!x|y) & (x|!y) & (!x|!y) is unsat; proof learns y then ⊥.
        let steps = [
            a(&[1, 2]),
            a(&[-1, 2]),
            a(&[1, -2]),
            a(&[-1, -2]),
            l(&[2]),
            l(&[]),
        ];
        assert!(check_refutation(2, &steps).is_ok());
    }

    #[test]
    fn rejects_non_rup_learn() {
        // Nothing forces x: learning [1] from (x|y) alone is not RUP.
        let steps = [a(&[1, 2]), l(&[1])];
        assert_eq!(
            check_refutation(2, &steps),
            Err(CheckError::NotRup { step: 1 })
        );
    }

    #[test]
    fn rejects_missing_refutation() {
        let steps = [a(&[1, 2]), a(&[-1, 2]), l(&[2])];
        assert_eq!(check_refutation(2, &steps), Err(CheckError::NoRefutation));
    }

    #[test]
    fn rejects_reordered_dependent_learns() {
        // The empty clause is RUP only *after* the unit [2] is available;
        // swapping the two Learn steps must break the proof.
        let axioms = [a(&[1, 2]), a(&[-1, 2]), a(&[1, -2]), a(&[-1, -2])];
        let mut good: Vec<Step> = axioms.to_vec();
        good.extend([l(&[2]), l(&[])]);
        assert!(check_refutation(2, &good).is_ok());
        let mut bad: Vec<Step> = axioms.to_vec();
        bad.extend([l(&[]), l(&[2])]);
        assert_eq!(
            check_refutation(2, &bad),
            Err(CheckError::NotRup { step: 4 })
        );
    }

    #[test]
    fn rejects_flipped_literal_via_delete_mismatch() {
        // Flipping a literal of a learned clause desynchronizes it from the
        // later deletion of the original clause.
        let axioms = [
            a(&[1, 2]),
            a(&[-1, 2]),
            a(&[-2, 3]),
            a(&[-2, 4]),
            a(&[-3, -4]),
            a(&[5, 6]),
        ];
        let mut good: Vec<Step> = axioms.to_vec();
        good.extend([l(&[2, 5]), d(&[2, 5]), l(&[2]), l(&[])]);
        assert!(check_refutation(6, &good).is_ok());
        let mut mutated: Vec<Step> = axioms.to_vec();
        mutated.extend([l(&[-2, 5]), d(&[2, 5]), l(&[2]), l(&[])]);
        assert_eq!(
            check_refutation(6, &mutated),
            Err(CheckError::DeleteMissing { step: 7 })
        );
    }

    #[test]
    fn rejects_assertion_about_unconstrained_variable() {
        // Variable 3 is untouched by the formula, so no clause mentioning
        // only it can ever be RUP — e.g. a learned clause with a literal
        // flipped into unconstrained territory.
        let steps = [a(&[1, 2]), a(&[-1, 2]), l(&[3]), l(&[])];
        assert_eq!(
            check_refutation(3, &steps),
            Err(CheckError::NotRup { step: 2 })
        );
    }

    #[test]
    fn rejects_deleting_unknown_clause() {
        let steps = [a(&[1, 2]), d(&[1, 3])];
        assert_eq!(
            check_refutation(3, &steps),
            Err(CheckError::DeleteMissing { step: 1 })
        );
    }

    #[test]
    fn delete_matches_up_to_literal_order() {
        let steps = [
            a(&[1, 2, 3]),
            a(&[1]),
            a(&[-1, 2]),
            a(&[-2]),
            d(&[3, 2, 1]), // same clause, permuted
            l(&[]),
        ];
        let report = check_refutation(3, &steps).unwrap();
        assert_eq!(report.deleted, 1);
    }

    #[test]
    fn deleted_clause_no_longer_supports_inference() {
        // Without (x|y), learning [2] after deleting it must fail.
        let steps = [a(&[1, 2]), a(&[-1, 2]), d(&[1, 2]), l(&[2])];
        assert_eq!(
            check_refutation(2, &steps),
            Err(CheckError::NotRup { step: 3 })
        );
    }

    #[test]
    fn rejects_out_of_range_literals() {
        assert_eq!(
            check_refutation(1, &[a(&[2])]),
            Err(CheckError::LitOutOfRange { step: 0, lit: 2 })
        );
        assert_eq!(
            check_refutation(1, &[a(&[0])]),
            Err(CheckError::LitOutOfRange { step: 0, lit: 0 })
        );
    }

    #[test]
    fn tautologies_are_harmless() {
        let steps = [a(&[1, -1, 2]), a(&[1]), a(&[-1]), l(&[])];
        assert!(check_refutation(2, &steps).is_ok());
    }

    #[test]
    fn pigeonhole_3_into_2_refutation_checks() {
        // Mirror the solver's own encoding; derive a hand-written proof.
        // p(i,j) for pigeon i in hole j: vars 1..=6 as i*2 + j + 1.
        let p = |i: usize, j: usize| (i * 2 + j + 1) as i32;
        let mut steps: Vec<Step> = Vec::new();
        for i in 0..3 {
            steps.push(a(&[p(i, 0), p(i, 1)]));
        }
        for j in 0..2 {
            for i in 0..3 {
                for k in (i + 1)..3 {
                    steps.push(a(&[-p(i, j), -p(k, j)]));
                }
            }
        }
        // Case split on p(0,0): each branch collapses by propagation after
        // learning the two units below, so the empty clause is RUP.
        steps.push(l(&[-p(0, 0), p(1, 1)]));
        steps.push(l(&[-p(0, 0)]));
        steps.push(l(&[p(0, 1)]));
        steps.push(l(&[]));
        assert!(check_refutation(6, &steps).is_ok());
    }
}
