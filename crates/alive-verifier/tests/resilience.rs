//! Resilient-driver behavior: budgets, escalating retries, cancellation,
//! panic isolation — and, under `--features fault-injection`, survival of
//! injected solver faults with honest reporting.
//!
//! The fault plan is process-global, so every test here serializes on one
//! mutex; tests in other binaries run in other processes and are unaffected.

use alive_ir::Transform;
use alive_smt::CancelToken;
use alive_verifier::{run_transforms, DriverConfig, OutcomeKind, RunReport, VerifyConfig};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// The paper's intro transform: needs a real SAT refutation (~100 conflicts
/// at width 4), and exactly one solver query per typing (the definedness
/// and poison conditions constant-fold away).
const INTRO: &str = "%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x";

/// Invalid variant of [`INTRO`] (wrong constant).
const INTRO_BAD: &str = "%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C, %x";

/// Invalid only at the signed maximum: a corrupted (bit-flipped) model is
/// *not* a counterexample, so model re-validation must reject it.
#[cfg(feature = "fault-injection")]
const SGT_MAX: &str = "%1 = add %x, 1\n%2 = icmp sgt %1, %x\n=>\n%2 = true";

/// Width-4-only config: one typing, hence one SAT query, per transform —
/// keeps fault ordinals deterministic.
fn narrow() -> VerifyConfig {
    let mut vc = VerifyConfig::fast();
    vc.typeck.widths = vec![4];
    vc
}

fn named(name: &str, src: &str) -> (String, Transform) {
    (
        name.to_string(),
        alive_ir::parse_transform(src).expect(name),
    )
}

fn kinds(report: &RunReport) -> Vec<OutcomeKind> {
    report.outcomes.iter().map(|o| o.kind).collect()
}

#[test]
fn driver_classifies_and_reports_json() {
    let _g = serial();
    let corpus = vec![named("good", INTRO), named("bad", INTRO_BAD)];
    let config = DriverConfig {
        verify: narrow(),
        keep_going: true,
        ..DriverConfig::default()
    };
    let report = run_transforms(&corpus, &config);
    assert_eq!(kinds(&report), [OutcomeKind::Valid, OutcomeKind::Invalid]);
    assert_eq!(report.exit_code(), 1);
    assert_eq!(report.skipped, 0);
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"alive-report/v3\""));
    assert!(json.contains("\"verdict\": \"valid\""));
    assert!(json.contains("\"verdict\": \"invalid\""));
    assert!(json.contains("\"name\": \"bad\""));
    // v2 additions: per-transform attempt history and worker attribution.
    assert!(json.contains("\"attempts\": ["));
    assert!(json.contains("\"worker\": 0"));
    assert!(json.contains("\"resumed\": false"));
    assert!(json.contains("\"hung\": 0"));
    // v3 additions: extended solver counters and per-phase timings.
    assert!(json.contains("\"propagations\": "));
    assert!(json.contains("\"ef_rounds\": "));
    assert!(json.contains("\"phases\": {\"typeck_us\": "));
}

#[test]
fn without_keep_going_the_first_failure_stops_the_run() {
    let _g = serial();
    let corpus = vec![named("bad", INTRO_BAD), named("good", INTRO)];
    let config = DriverConfig {
        verify: narrow(),
        keep_going: false,
        ..DriverConfig::default()
    };
    let report = run_transforms(&corpus, &config);
    assert_eq!(kinds(&report), [OutcomeKind::Invalid]);
    assert_eq!(report.skipped, 1);
    assert_eq!(report.exit_code(), 1);
}

#[test]
fn cancellation_before_the_run_skips_everything() {
    let _g = serial();
    let corpus = vec![named("a", INTRO), named("b", INTRO)];
    let cancel = CancelToken::new();
    cancel.cancel();
    let config = DriverConfig {
        verify: narrow(),
        cancel,
        ..DriverConfig::default()
    };
    let report = run_transforms(&corpus, &config);
    assert!(report.cancelled);
    assert!(report.outcomes.is_empty());
    assert_eq!(report.skipped, 2);
    assert_eq!(report.exit_code(), 130);
    // The partial report still serializes.
    assert!(report.to_json().contains("\"cancelled\": true"));
}

#[test]
fn expired_deadline_reports_unknown_with_reason() {
    let _g = serial();
    let corpus = vec![named("t", INTRO)];
    let config = DriverConfig {
        verify: narrow(),
        timeout: Some(Duration::ZERO),
        keep_going: true,
        ..DriverConfig::default()
    };
    let report = run_transforms(&corpus, &config);
    assert_eq!(kinds(&report), [OutcomeKind::Unknown]);
    assert!(
        report.outcomes[0].detail.contains("deadline"),
        "{}",
        report.outcomes[0].detail
    );
    assert_eq!(report.exit_code(), 2);
}

#[test]
fn escalating_retries_recover_budget_exhaustion() {
    let _g = serial();
    // INTRO needs ~106 conflicts at width 4: attempts at 2, 16, 128
    // conflicts — the third one (second retry) lands it.
    let corpus = vec![named("t", INTRO)];
    let config = DriverConfig {
        verify: narrow(),
        conflict_budget: Some(2),
        max_retries: 2,
        retry_multiplier: 8,
        ..DriverConfig::default()
    };
    let report = run_transforms(&corpus, &config);
    assert_eq!(kinds(&report), [OutcomeKind::Valid]);
    assert_eq!(report.outcomes[0].retries, 2);
    assert_eq!(report.exit_code(), 0);
}

#[test]
fn exhausted_retries_stay_unknown() {
    let _g = serial();
    let corpus = vec![named("t", INTRO)];
    let config = DriverConfig {
        verify: narrow(),
        conflict_budget: Some(2),
        max_retries: 1,
        retry_multiplier: 8,
        keep_going: true,
        ..DriverConfig::default()
    };
    let report = run_transforms(&corpus, &config);
    assert_eq!(kinds(&report), [OutcomeKind::Unknown]);
    assert_eq!(report.outcomes[0].retries, 1);
    assert!(
        report.outcomes[0]
            .detail
            .contains("conflict budget exhausted"),
        "{}",
        report.outcomes[0].detail
    );
    assert_eq!(report.exit_code(), 2);
}

#[test]
fn json_report_escapes_special_characters() {
    let _g = serial();
    use alive_verifier::{Attempt, TransformOutcome};
    let report = RunReport {
        outcomes: vec![TransformOutcome {
            name: "with \"quotes\"\nand newline".to_string(),
            kind: OutcomeKind::Unknown,
            detail: "tab\there".to_string(),
            certificates: Vec::new(),
            wall: Duration::from_millis(3),
            conflicts: 1,
            propagations: 0,
            decisions: 0,
            restarts: 0,
            ef_rounds: 0,
            phases: alive_verifier::PhaseTimes::default(),
            queries: 2,
            typings: 1,
            retries: 0,
            worker: 0,
            resumed: false,
            attempts: vec![Attempt {
                wall: Duration::from_millis(3),
                conflicts: 1,
                outcome: "unknown: tab\there".to_string(),
            }],
        }],
        cancelled: false,
        skipped: 0,
        journal_errors: 0,
    };
    let json = report.to_json();
    assert!(json.contains("with \\\"quotes\\\"\\nand newline"));
    assert!(json.contains("tab\\there"));
}

#[cfg(feature = "fault-injection")]
mod faults {
    use super::*;
    use alive_sat::fault::{self, FailurePlan};

    /// Installs `spec` for the duration of one closure, then clears it.
    fn with_plan<T>(spec: &str, f: impl FnOnce() -> T) -> T {
        fault::install(Some(FailurePlan::parse(spec).expect(spec)));
        let out = f();
        fault::install(None);
        out
    }

    #[test]
    fn injected_panic_degrades_to_unknown_and_the_run_survives() {
        let _g = serial();
        let corpus = vec![named("first", INTRO), named("second", INTRO)];
        let config = DriverConfig {
            verify: narrow(),
            keep_going: true,
            max_retries: 0,
            ..DriverConfig::default()
        };
        let report = with_plan("sat:panic@1", || run_transforms(&corpus, &config));
        assert_eq!(kinds(&report), [OutcomeKind::Unknown, OutcomeKind::Valid]);
        assert!(
            report.outcomes[0].detail.contains("internal error"),
            "{}",
            report.outcomes[0].detail
        );
        assert_eq!(report.exit_code(), 2);
    }

    #[test]
    fn injected_unknown_is_never_retried() {
        let _g = serial();
        let corpus = vec![named("t", INTRO)];
        let config = DriverConfig {
            verify: narrow(),
            conflict_budget: Some(1_000),
            max_retries: 3,
            keep_going: true,
            ..DriverConfig::default()
        };
        let report = with_plan("sat:unknown@1", || run_transforms(&corpus, &config));
        assert_eq!(kinds(&report), [OutcomeKind::Unknown]);
        assert_eq!(
            report.outcomes[0].retries, 0,
            "injected faults must not retry"
        );
        assert!(
            report.outcomes[0].detail.contains("injected"),
            "{}",
            report.outcomes[0].detail
        );
    }

    #[test]
    fn corrupted_model_is_caught_by_concrete_revalidation() {
        let _g = serial();
        let corpus = vec![named("t", SGT_MAX)];
        let config = DriverConfig {
            verify: narrow(),
            keep_going: true,
            max_retries: 0,
            ..DriverConfig::default()
        };
        let report = with_plan("sat:corrupt-model@1", || run_transforms(&corpus, &config));
        assert_eq!(kinds(&report), [OutcomeKind::Unknown]);
        assert!(
            report.outcomes[0].detail.contains("re-validation"),
            "{}",
            report.outcomes[0].detail
        );
        // Without the fault the same transform is honestly invalid.
        let clean = run_transforms(&corpus, &config);
        assert_eq!(kinds(&clean), [OutcomeKind::Invalid]);
    }

    /// The issue's acceptance scenario: a corpus run with an injected panic
    /// AND an injected never-terminating query (tamed by `--timeout`),
    /// completing under keep-going with both reported as Unknown — reasons
    /// and all — while every healthy transform still verifies.
    #[test]
    fn acceptance_panic_and_hang_in_one_corpus_run() {
        let _g = serial();
        // Five copies of INTRO: one typing and one SAT query each, so SAT
        // ordinal i maps to transform i... except that a fault consumes the
        // ordinal of the query it replaces. Ordinals land as: t1 → 1,
        // t2 → 2 (panic; no further queries for t2), t3 → 3, t4 → 4 (hang),
        // t5 → 5.
        let corpus: Vec<(String, Transform)> =
            (1..=5).map(|i| named(&format!("t{i}"), INTRO)).collect();
        let config = DriverConfig {
            verify: narrow(),
            timeout: Some(Duration::from_secs(2)),
            keep_going: true,
            max_retries: 0,
            ..DriverConfig::default()
        };
        let report = with_plan("sat:panic@2,sat:hang@4", || {
            run_transforms(&corpus, &config)
        });
        assert_eq!(
            kinds(&report),
            [
                OutcomeKind::Valid,
                OutcomeKind::Unknown,
                OutcomeKind::Valid,
                OutcomeKind::Unknown,
                OutcomeKind::Valid,
            ],
            "{report:?}"
        );
        assert!(
            report.outcomes[1].detail.contains("internal error"),
            "panic victim must carry an internal-error reason: {}",
            report.outcomes[1].detail
        );
        assert!(
            report.outcomes[3].detail.contains("deadline"),
            "hang victim must be cut down by the deadline: {}",
            report.outcomes[3].detail
        );
        assert!(!report.cancelled);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.exit_code(), 2);
        // Both failure reasons surface in the JSON report.
        let json = report.to_json();
        assert!(json.contains("internal error"));
        assert!(json.contains("deadline"));
        assert!(json.contains("\"unknown\": 2"));
        assert!(json.contains("\"valid\": 3"));
    }

    #[test]
    fn cancellation_cuts_a_hang_short() {
        let _g = serial();
        let corpus = vec![named("t", INTRO)];
        let cancel = CancelToken::new();
        let config = DriverConfig {
            verify: narrow(),
            cancel: cancel.clone(),
            keep_going: true,
            max_retries: 0,
            ..DriverConfig::default()
        };
        // No deadline at all: only cancellation can end the injected hang.
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            cancel.cancel();
        });
        let report = with_plan("sat:hang@1", || run_transforms(&corpus, &config));
        canceller.join().unwrap();
        assert!(report.cancelled, "{report:?}");
        assert_eq!(kinds(&report), [OutcomeKind::Unknown]);
        assert!(
            report.outcomes[0].detail.contains("cancelled"),
            "{}",
            report.outcomes[0].detail
        );
        assert_eq!(report.exit_code(), 130);
    }
}
