//! Supervised parallel driver: worker pool correctness, deterministic
//! reports, crash-safe journaling, resume planning — and, under
//! `--features fault-injection`, the watchdog's detach of a worker stuck
//! in a query that ignores both its budget and its cancel token.
//!
//! The fault plan is process-global, so every test here serializes on one
//! mutex; tests in other binaries run in other processes and are unaffected.

use alive_ir::Transform;
use alive_verifier::{
    config_fingerprint, plan_resume, run_supervised, run_transforms, run_transforms_parallel,
    transform_key, DriverConfig, Journal, OutcomeKind, PoolConfig, RunReport, TaskSpec,
    VerifyConfig,
};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// The paper's intro transform (valid) and a broken variant (invalid).
const INTRO: &str = "%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x";
const INTRO_BAD: &str = "%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C, %x";

fn narrow() -> VerifyConfig {
    let mut vc = VerifyConfig::fast();
    vc.typeck.widths = vec![4];
    vc
}

fn named(name: &str, src: &str) -> (String, Transform) {
    (
        name.to_string(),
        alive_ir::parse_transform(src).expect(name),
    )
}

fn kinds(report: &RunReport) -> Vec<OutcomeKind> {
    report.outcomes.iter().map(|o| o.kind).collect()
}

/// A corpus with a deterministic verdict pattern: valid/invalid
/// alternating, 8 transforms.
fn mixed_corpus() -> Vec<(String, Transform)> {
    (0..8)
        .map(|i| {
            if i % 2 == 0 {
                named(&format!("t{i}"), INTRO)
            } else {
                named(&format!("t{i}"), INTRO_BAD)
            }
        })
        .collect()
}

/// Like [`mixed_corpus`], but every transform is textually distinct, so
/// each one gets its own journal key ((x ^ -1) + k ==> (k-1) - x, valid
/// for every k; the invalid variants use k instead of k-1).
fn distinct_corpus() -> Vec<(String, Transform)> {
    (0..8)
        .map(|i| {
            let k = i + 1;
            let target = if i % 2 == 0 { k - 1 } else { k };
            named(
                &format!("t{i}"),
                &format!("%1 = xor %x, -1\n%2 = add %1, {k}\n=>\n%2 = sub {target}, %x"),
            )
        })
        .collect()
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("alive-supervised-{}-{name}", std::process::id()));
    p
}

/// Masks the volatile fields (timings, worker attribution) in a v3
/// report, leaving what must be byte-identical across runs.
fn normalize(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while !rest.is_empty() {
        let hit = [
            "\"wall_ms\": ",
            "\"worker\": ",
            "\"typeck_us\": ",
            "\"encode_us\": ",
            "\"solve_us\": ",
            "\"check_us\": ",
        ]
        .iter()
        .filter_map(|m| rest.find(m).map(|p| (p, m.len())))
        .min();
        match hit {
            Some((pos, len)) => {
                let end = pos + len;
                out.push_str(&rest[..end]);
                out.push('N');
                rest = rest[end..].trim_start_matches(|c: char| c.is_ascii_digit());
            }
            None => {
                out.push_str(rest);
                break;
            }
        }
    }
    out
}

#[test]
fn parallel_run_matches_sequential_verdicts() {
    let _g = serial();
    let corpus = mixed_corpus();
    let config = DriverConfig {
        verify: narrow(),
        keep_going: true,
        ..DriverConfig::default()
    };
    let sequential = run_transforms(&corpus, &config);
    let parallel = run_transforms_parallel(
        &corpus,
        &config,
        &PoolConfig {
            jobs: 4,
            ..PoolConfig::default()
        },
    );
    assert_eq!(kinds(&sequential), kinds(&parallel));
    // Input order is preserved regardless of completion order.
    let names: Vec<&str> = parallel.outcomes.iter().map(|o| o.name.as_str()).collect();
    assert_eq!(names, ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"]);
    assert_eq!(parallel.exit_code(), sequential.exit_code());
}

#[test]
fn parallel_report_is_deterministic_modulo_volatile_fields() {
    let _g = serial();
    let corpus = mixed_corpus();
    let config = DriverConfig {
        verify: narrow(),
        keep_going: true,
        ..DriverConfig::default()
    };
    let pool = PoolConfig {
        jobs: 4,
        ..PoolConfig::default()
    };
    let a = normalize(&run_transforms_parallel(&corpus, &config, &pool).to_json());
    let b = normalize(&run_transforms_parallel(&corpus, &config, &pool).to_json());
    assert_eq!(a, b, "normalized v2 reports must be byte-identical");
    // And a jobs=1 pool run produces the same normalized report too.
    let c = normalize(&run_transforms_parallel(&corpus, &config, &PoolConfig::default()).to_json());
    assert_eq!(a, c);
}

#[test]
fn preset_outcomes_are_reported_before_fresh_work_in_input_order() {
    let _g = serial();
    let corpus = mixed_corpus();
    let config = DriverConfig {
        verify: narrow(),
        keep_going: true,
        ..DriverConfig::default()
    };
    // Pretend transforms 0..4 are already journaled; only 4..8 get tasks.
    let full = run_transforms(&corpus, &config);
    let preset: Vec<_> = full.outcomes[..4]
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, mut o)| {
            o.resumed = true;
            (i, o)
        })
        .collect();
    let tasks: Vec<TaskSpec> = (4..8).map(TaskSpec::fresh).collect();
    let mut seen = Vec::new();
    let report = run_supervised(
        &corpus,
        tasks,
        preset,
        &config,
        &PoolConfig {
            jobs: 2,
            ..PoolConfig::default()
        },
        None,
        |i, o| seen.push((i, o.resumed)),
    );
    assert_eq!(kinds(&report), kinds(&full));
    assert_eq!(&seen[..4], &[(0, true), (1, true), (2, true), (3, true)]);
    for (i, resumed) in &seen[4..] {
        assert!(*i >= 4 && !*resumed, "fresh work mislabeled: {i} {resumed}");
    }
    assert!(report.outcomes[..4].iter().all(|o| o.resumed));
    assert!(report.outcomes[4..].iter().all(|o| !o.resumed));
}

#[test]
fn journal_survives_a_run_and_plans_a_complete_resume() {
    let _g = serial();
    let corpus = distinct_corpus();
    let config = DriverConfig {
        verify: narrow(),
        keep_going: true,
        ..DriverConfig::default()
    };
    let fingerprint = config_fingerprint(&config.verify);
    let keys: Vec<String> = corpus
        .iter()
        .map(|(_, t)| transform_key(t, fingerprint))
        .collect();
    let path = tmp_path("journal-full.jsonl");
    let mut journal = Journal::create(&path, fingerprint).unwrap();
    let tasks: Vec<TaskSpec> = (0..corpus.len()).map(TaskSpec::fresh).collect();
    let report = run_supervised(
        &corpus,
        tasks,
        Vec::new(),
        &config,
        &PoolConfig {
            jobs: 4,
            ..PoolConfig::default()
        },
        Some((&mut journal, &keys)),
        |_, _| {},
    );
    assert_eq!(report.journal_errors, 0);
    drop(journal);

    let loaded = Journal::load(&path).unwrap();
    assert_eq!(loaded.discarded, 0);
    assert_eq!(loaded.fingerprint, Some(fingerprint));
    assert_eq!(loaded.records.len(), corpus.len());
    let plan = plan_resume(&loaded.records, &keys);
    assert_eq!(plan.reuse.len(), corpus.len(), "all verdicts reusable");
    assert!(plan.requeue.is_empty());
    assert!(plan.fresh.is_empty());
    // Replaying the journal reproduces the verdicts without verification.
    for (i, rec) in &plan.reuse {
        let o = rec.to_outcome();
        assert_eq!(o.kind, report.outcomes[*i].kind);
        assert!(o.resumed);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_journal_tail_is_discarded_and_the_rest_reused() {
    let _g = serial();
    let corpus = distinct_corpus();
    let config = DriverConfig {
        verify: narrow(),
        keep_going: true,
        ..DriverConfig::default()
    };
    let fingerprint = config_fingerprint(&config.verify);
    let keys: Vec<String> = corpus
        .iter()
        .map(|(_, t)| transform_key(t, fingerprint))
        .collect();
    let path = tmp_path("journal-torn.jsonl");
    let mut journal = Journal::create(&path, fingerprint).unwrap();
    let tasks: Vec<TaskSpec> = (0..corpus.len()).map(TaskSpec::fresh).collect();
    run_supervised(
        &corpus,
        tasks,
        Vec::new(),
        &config,
        &PoolConfig::default(),
        Some((&mut journal, &keys)),
        |_, _| {},
    );
    drop(journal);

    // Simulate kill -9 mid-write: chop the file mid-record.
    let bytes = std::fs::read(&path).unwrap();
    let cut = bytes.len() - 17;
    std::fs::write(&path, &bytes[..cut]).unwrap();

    let loaded = Journal::load(&path).unwrap();
    assert_eq!(loaded.discarded, 1, "exactly the torn record is dropped");
    assert_eq!(loaded.records.len(), corpus.len() - 1);
    let plan = plan_resume(&loaded.records, &keys);
    assert_eq!(plan.reuse.len(), corpus.len() - 1);
    assert_eq!(plan.fresh, vec![corpus.len() - 1]);

    // open_append truncates the torn tail so new records stay parseable.
    let mut journal = Journal::open_append(&path).unwrap();
    let missing: Vec<TaskSpec> = plan.fresh.iter().map(|&i| TaskSpec::fresh(i)).collect();
    let preset: Vec<_> = plan
        .reuse
        .iter()
        .map(|(i, r)| (*i, r.to_outcome()))
        .collect();
    let resumed = run_supervised(
        &corpus,
        missing,
        preset,
        &config,
        &PoolConfig::default(),
        Some((&mut journal, &keys)),
        |_, _| {},
    );
    drop(journal);
    assert_eq!(kinds(&resumed), kinds(&run_transforms(&corpus, &config)));
    let reloaded = Journal::load(&path).unwrap();
    assert_eq!(reloaded.discarded, 0, "truncation removed the torn tail");
    assert_eq!(
        plan_resume(&reloaded.records, &keys).reuse.len(),
        corpus.len()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn journal_from_other_config_reuses_nothing() {
    let _g = serial();
    let corpus = vec![named("t", INTRO)];
    let narrow_fp = config_fingerprint(&narrow());
    let wide_fp = config_fingerprint(&VerifyConfig::fast());
    assert_ne!(narrow_fp, wide_fp);
    let narrow_keys: Vec<String> = corpus
        .iter()
        .map(|(_, t)| transform_key(t, narrow_fp))
        .collect();
    let wide_keys: Vec<String> = corpus
        .iter()
        .map(|(_, t)| transform_key(t, wide_fp))
        .collect();
    let config = DriverConfig {
        verify: narrow(),
        ..DriverConfig::default()
    };
    let path = tmp_path("journal-config.jsonl");
    let mut journal = Journal::create(&path, narrow_fp).unwrap();
    run_supervised(
        &corpus,
        vec![TaskSpec::fresh(0)],
        Vec::new(),
        &config,
        &PoolConfig::default(),
        Some((&mut journal, &narrow_keys)),
        |_, _| {},
    );
    drop(journal);
    let loaded = Journal::load(&path).unwrap();
    let plan = plan_resume(&loaded.records, &wide_keys);
    assert!(plan.reuse.is_empty(), "different config must not reuse");
    assert_eq!(plan.fresh, vec![0]);
    std::fs::remove_file(&path).ok();
}

#[cfg(feature = "fault-injection")]
mod faults {
    use super::*;
    use alive_sat::fault::{self, FailurePlan};
    use std::time::Duration;

    fn with_plan<T>(spec: &str, f: impl FnOnce() -> T) -> T {
        fault::install(Some(FailurePlan::parse(spec).expect(spec)));
        let out = f();
        fault::install(None);
        out
    }

    /// The tentpole acceptance scenario: one query ignores its budget AND
    /// its cancel token (`hang-hard`), so cooperative cancellation cannot
    /// touch it. The watchdog must cancel at the deadline, wait out the
    /// grace period, detach the stuck worker (leaking its thread), record
    /// the transform as hung, and spawn a replacement so every other
    /// transform still verifies.
    #[test]
    fn watchdog_detaches_a_hard_hang_and_the_pool_recovers() {
        let _g = serial();
        let corpus: Vec<(String, Transform)> =
            (1..=6).map(|i| named(&format!("t{i}"), INTRO)).collect();
        let config = DriverConfig {
            verify: narrow(),
            timeout: Some(Duration::from_millis(200)),
            keep_going: true,
            max_retries: 0,
            ..DriverConfig::default()
        };
        let pool = PoolConfig {
            jobs: 4,
            grace: Duration::from_millis(100),
        };
        // One typing, one SAT query per transform: ordinal 3 is t3.
        let report = with_plan("sat:hang-hard@3", || {
            run_transforms_parallel(&corpus, &config, &pool)
        });
        let hung: Vec<&str> = report
            .outcomes
            .iter()
            .filter(|o| o.kind == OutcomeKind::Hung)
            .map(|o| o.name.as_str())
            .collect();
        assert_eq!(hung.len(), 1, "exactly one hung transform: {report:?}");
        assert_eq!(
            report.count(OutcomeKind::Valid),
            corpus.len() - 1,
            "all other transforms must verify: {report:?}"
        );
        let victim = report
            .outcomes
            .iter()
            .find(|o| o.kind == OutcomeKind::Hung)
            .unwrap();
        assert!(
            victim.detail.contains("detached"),
            "hung detail must say so: {}",
            victim.detail
        );
        assert!(!report.cancelled);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.exit_code(), 2, "hung-only runs are inconclusive");
        let json = report.to_json();
        assert!(json.contains("\"hung\": 1"));
        assert!(json.contains("\"verdict\": \"hung\""));
    }

    /// A journaled run with a hard hang: the hung entry lands in the
    /// journal too, and `plan_resume` requeues it while reusing the rest.
    #[test]
    fn hung_journal_entries_are_requeued_on_resume() {
        let _g = serial();
        // Textually distinct (one journal key each), one SAT query each.
        let corpus: Vec<(String, Transform)> = (1..=4)
            .map(|k| {
                named(
                    &format!("t{k}"),
                    &format!(
                        "%1 = xor %x, -1\n%2 = add %1, {k}\n=>\n%2 = sub {}, %x",
                        k - 1
                    ),
                )
            })
            .collect();
        let config = DriverConfig {
            verify: narrow(),
            timeout: Some(Duration::from_millis(200)),
            keep_going: true,
            max_retries: 0,
            ..DriverConfig::default()
        };
        let pool = PoolConfig {
            jobs: 2,
            grace: Duration::from_millis(100),
        };
        let fingerprint = config_fingerprint(&config.verify);
        let keys: Vec<String> = corpus
            .iter()
            .map(|(_, t)| transform_key(t, fingerprint))
            .collect();
        let path = tmp_path("journal-hang.jsonl");
        let mut journal = Journal::create(&path, fingerprint).unwrap();
        let tasks: Vec<TaskSpec> = (0..corpus.len()).map(TaskSpec::fresh).collect();
        with_plan("sat:hang-hard@2", || {
            run_supervised(
                &corpus,
                tasks,
                Vec::new(),
                &config,
                &pool,
                Some((&mut journal, &keys)),
                |_, _| {},
            )
        });
        drop(journal);
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.records.len(), corpus.len());
        let plan = plan_resume(&loaded.records, &keys);
        assert_eq!(plan.requeue.len(), 1, "the hung entry is requeued");
        assert_eq!(plan.reuse.len(), corpus.len() - 1);
        assert!(plan.fresh.is_empty());
        // The requeued entry carries its failed attempt for the history.
        let (_, rec) = &plan.requeue[0];
        assert_eq!(rec.verdict, OutcomeKind::Hung);
        assert!(!rec.attempts.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
