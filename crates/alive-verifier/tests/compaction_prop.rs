//! Property tests for verdict-store compaction.
//!
//! Compaction is a rewrite, and rewrites are where stores lose data; these
//! properties pin down that it cannot. For arbitrary insert histories
//! (with superseding re-insertions, the thing that creates dead records):
//!
//! * `lookup` answers for every key are byte-identical before and after
//!   compaction, across a reopen;
//! * the header's config fingerprint and epoch survive the rewrite;
//! * a torn tail written *after* a compaction still truncates cleanly on
//!   the next open — compaction must not disturb the torn-tail recovery
//!   invariants the store relies on.

use alive_verifier::{compact_store, OutcomeKind, StoreOpen, VerdictStore};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_store() -> PathBuf {
    let dir = std::env::temp_dir().join("alive-compaction-prop");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "store-{}-{}.jsonl",
        std::process::id(),
        CASE.fetch_add(1, Ordering::SeqCst)
    ))
}

fn canon(i: usize) -> String {
    format!("%v1 = add %v0, C{i}\n=>\n%v1 = %v0")
}

fn verdict(i: usize) -> (OutcomeKind, &'static str) {
    match i % 3 {
        0 => (OutcomeKind::Unknown, "conflict budget exhausted"),
        1 => (OutcomeKind::Valid, "valid"),
        _ => (OutcomeKind::Invalid, "counterexample:\n%x = 1"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Inserts (key, verdict) pairs — small key space, so re-insertions
    /// supersede — then compacts offline and checks every key's lookup,
    /// plus the header identity, is unchanged.
    #[test]
    fn lookups_and_header_survive_compaction(
        history in proptest::collection::vec((0usize..8, 0usize..3, 1u64..500), 1..48),
        fingerprint in 1u64..1000,
        epoch in 0u64..6,
    ) {
        let path = temp_store();
        let mut live = std::collections::HashMap::new();
        {
            let (mut store, how) =
                VerdictStore::open(&path, fingerprint, epoch, Some("widths=4,")).unwrap();
            prop_assert_eq!(how, StoreOpen::Created);
            for &(key, kind, wall_ms) in &history {
                let (v, reason) = verdict(kind);
                store.insert(&canon(key), v, reason, wall_ms, "").unwrap();
                live.insert(key, store.lookup(&canon(key)).unwrap().clone());
            }
        }
        let report = compact_store(&path).unwrap();
        prop_assert_eq!(report.replayed, history.len());
        prop_assert_eq!(report.live, live.len());
        prop_assert_eq!(report.dropped, history.len() - live.len());
        prop_assert_eq!(report.fingerprint, fingerprint);
        prop_assert_eq!(report.epoch, epoch);
        // Reopen under the same identity: no eviction, nothing discarded,
        // and every key answers exactly as before.
        let (store, how) =
            VerdictStore::open(&path, fingerprint, epoch, Some("widths=4,")).unwrap();
        prop_assert_eq!(
            how,
            StoreOpen::Loaded { records: live.len(), discarded: 0 }
        );
        for key in 0..8 {
            prop_assert_eq!(store.lookup(&canon(key)), live.get(&key));
        }
        drop(store);
        std::fs::remove_file(&path).ok();
    }

    /// A torn tail appended after a compaction is truncated on reopen
    /// exactly as it would be on a never-compacted store: the readable
    /// records survive, the garbage does not, and a second reopen finds a
    /// clean file.
    #[test]
    fn torn_tail_after_compaction_recovers(
        history in proptest::collection::vec((0usize..4, 0usize..3, 1u64..500), 2..24),
        // Printable ASCII: a real torn write is a prefix of a record the
        // store itself wrote, so it is always valid UTF-8 text.
        garbage in proptest::collection::vec(32u8..127, 1..80),
    ) {
        let path = temp_store();
        let mut live = std::collections::HashMap::new();
        {
            let (mut store, _) = VerdictStore::open(&path, 7, 0, None).unwrap();
            for &(key, kind, wall_ms) in &history {
                let (v, reason) = verdict(kind);
                store.insert(&canon(key), v, reason, wall_ms, "").unwrap();
                live.insert(key, store.lookup(&canon(key)).unwrap().clone());
            }
        }
        compact_store(&path).unwrap();
        // Tear the tail: arbitrary bytes with any newlines stripped, so
        // the damage is confined to one unterminated final line.
        let mut tail: Vec<u8> = garbage.into_iter().filter(|&b| b != b'\n').collect();
        if tail.is_empty() {
            tail.push(b'{');
        }
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&tail).unwrap();
        }
        let (store, how) = VerdictStore::open(&path, 7, 0, None).unwrap();
        prop_assert_eq!(
            how,
            StoreOpen::Loaded { records: live.len(), discarded: 1 }
        );
        for (key, rec) in &live {
            prop_assert_eq!(store.lookup(&canon(*key)), Some(rec));
        }
        drop(store);
        // The repair was written back: a second open discards nothing.
        let (_, how) = VerdictStore::open(&path, 7, 0, None).unwrap();
        prop_assert_eq!(
            how,
            StoreOpen::Loaded { records: live.len(), discarded: 0 }
        );
        std::fs::remove_file(&path).ok();
    }
}
