//! The Alive refinement verifier.
//!
//! Given a parsed Alive transformation, this crate
//!
//! * enumerates feasible type assignments (via [`alive_typeck`]),
//! * encodes both templates (via [`alive_vcgen`]),
//! * discharges the four correctness conditions of the paper (§3.1.2 and
//!   §3.3.2) by refutation, handling the `∃∀` alternation from source
//!   `undef` values with CEGIS,
//! * produces Fig. 5-style [`Counterexample`]s for incorrect
//!   transformations, and
//! * infers optimal `nsw`/`nuw`/`exact` attribute placements (§3.4).
//!
//! # Examples
//!
//! ```
//! use alive_ir::parse_transform;
//! use alive_verifier::{verify, VerifyConfig};
//!
//! // The paper's (x+1) > x  ==>  true optimization, justified by nsw.
//! let t = parse_transform(r"
//! %1 = add nsw %x, 1
//! %2 = icmp sgt %1, %x
//! =>
//! %2 = true
//! ").unwrap();
//! let verdict = verify(&t, &VerifyConfig::fast()).unwrap();
//! assert!(verdict.is_valid());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attrs;
mod counterexample;
mod driver;
pub mod durable;
pub mod journal;
mod pool;
pub mod store;
mod verify;

pub use attrs::{infer_attributes, AttrInferenceResult, FlagPos};
pub use counterexample::{Counterexample, FailureKind};
pub use driver::{
    run_transforms, run_transforms_with, verify_single, Attempt, DriverConfig, OutcomeKind,
    RunReport, TransformOutcome,
};
pub use journal::{
    config_description, config_fingerprint, fingerprint_diff, plan_resume, transform_key, Journal,
    JournalRecord, LoadedJournal, ResumePlan,
};
pub use pool::{run_supervised, run_transforms_parallel, PoolConfig, TaskSpec};
pub use store::{
    compact_store, evicted_path, lock_path, needs_compaction, quarantine_path, scrub_store,
    CompactReport, ScrubReport, StoreLock, StoreOpen, StoreRecord, VerdictStore,
};
pub use verify::{
    verify, verify_with_certificates, verify_with_stats, PhaseTimes, Verdict, VerifyConfig,
    VerifyError, VerifyStats,
};
