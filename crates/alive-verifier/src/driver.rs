//! The resilient corpus driver.
//!
//! Verifying a corpus of transformations must survive the failure of any
//! one of them: a query that outgrows its budget, a wall-clock deadline, a
//! Ctrl-C, or an outright defect (panic) in the solver stack. This module
//! wraps [`verify`](crate::verify()) in the machinery that makes a batch
//! run dependable:
//!
//! * **budgets** — each transform is verified under a [`Budget`] combining
//!   a per-attempt wall-clock deadline, a SAT conflict limit, and a shared
//!   [`CancelToken`];
//! * **panic isolation** — a panic anywhere inside verification degrades to
//!   an `Unknown` outcome with an `internal error:` reason instead of
//!   aborting the run;
//! * **escalating retries** — transforms whose counter budget ran out are
//!   re-run with the conflict limit multiplied, so a cheap first pass over
//!   the corpus is followed by a slower second look at the stragglers only;
//! * **structured reporting** — every transform yields a
//!   [`TransformOutcome`] with verdict, wall time, per-attempt records,
//!   solver counters, and per-phase timings, and the whole run serializes
//!   to JSON ([`RunReport::to_json`], schema `alive-report/v3`) even when
//!   it was cancelled halfway.
//!
//! The sequential entry point is [`run_transforms`]; the supervised
//! parallel driver (worker pool, watchdog, crash-safe journal) lives in
//! [`crate::pool`] and reuses [`verify_one`] per task.

use crate::verify::{
    verify_with_certificates, verify_with_stats, PhaseTimes, Verdict, VerifyConfig, VerifyStats,
};
use alive_ir::Transform;
use alive_proof::Certificate;
use alive_smt::{Budget, CancelToken};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Settings for [`run_transforms`].
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Underlying verifier settings (type enumeration, CEGIS). The budget
    /// inside `verify.ef` is overridden per attempt from the fields below.
    pub verify: VerifyConfig,
    /// Wall-clock limit per verification attempt (re-armed on retry).
    pub timeout: Option<Duration>,
    /// SAT conflict limit for the first attempt.
    pub conflict_budget: Option<u64>,
    /// Keep verifying after an invalid transform or an error (the default
    /// stops at the first, reporting the rest as skipped).
    pub keep_going: bool,
    /// How many escalating retries a budget-exhausted transform gets.
    pub max_retries: u32,
    /// Conflict-budget multiplier applied on each retry.
    pub retry_multiplier: u64,
    /// Cooperative cancellation (Ctrl-C); checked between transforms and
    /// polled inside every solver.
    pub cancel: CancelToken,
    /// Also produce refinement certificates for refuted conditions.
    pub with_certificates: bool,
}

impl Default for DriverConfig {
    fn default() -> DriverConfig {
        DriverConfig {
            verify: VerifyConfig::default(),
            timeout: None,
            conflict_budget: None,
            keep_going: false,
            max_retries: 1,
            retry_multiplier: 8,
            cancel: CancelToken::new(),
            with_certificates: false,
        }
    }
}

/// How one transform's verification concluded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OutcomeKind {
    /// Proven correct.
    Valid,
    /// Counterexample found.
    Invalid,
    /// No conclusion (budget, deadline, cancellation, internal error).
    Unknown,
    /// The transform could not even be set up (ill-formed, ill-typed).
    Error,
    /// The worker verifying this transform ignored cancellation past the
    /// watchdog's grace period and was detached (supervised runs only).
    Hung,
}

impl OutcomeKind {
    /// Stable lower-case label used in the JSON report and the journal.
    pub fn as_str(self) -> &'static str {
        match self {
            OutcomeKind::Valid => "valid",
            OutcomeKind::Invalid => "invalid",
            OutcomeKind::Unknown => "unknown",
            OutcomeKind::Error => "error",
            OutcomeKind::Hung => "hung",
        }
    }

    /// Inverse of [`OutcomeKind::as_str`] (used when resuming a journal).
    pub fn from_label(s: &str) -> Option<OutcomeKind> {
        Some(match s {
            "valid" => OutcomeKind::Valid,
            "invalid" => OutcomeKind::Invalid,
            "unknown" => OutcomeKind::Unknown,
            "error" => OutcomeKind::Error,
            "hung" => OutcomeKind::Hung,
            _ => return None,
        })
    }
}

/// One verification attempt inside a [`TransformOutcome`]: supervised runs
/// record every attempt (including requeue history carried over from a
/// resumed journal) so the report can show where the time went.
#[derive(Clone, Debug)]
pub struct Attempt {
    /// Wall time of this attempt.
    pub wall: Duration,
    /// SAT conflicts spent in this attempt.
    pub conflicts: u64,
    /// Short outcome label: `valid`, `invalid`, `error`, `hung`, or
    /// `unknown: <reason>`.
    pub outcome: String,
}

/// The record of one transform's verification within a run.
#[derive(Clone, Debug)]
pub struct TransformOutcome {
    /// Transform name (or `<unnamed>`).
    pub name: String,
    /// Final classification.
    pub kind: OutcomeKind,
    /// Human-readable detail: the verdict display, counterexample, or the
    /// reason no conclusion was reached.
    pub detail: String,
    /// Certificates for refuted conditions (when requested).
    pub certificates: Vec<Certificate>,
    /// Wall time across all attempts.
    pub wall: Duration,
    /// SAT conflicts spent across all attempts.
    pub conflicts: u64,
    /// Literals propagated across all attempts.
    pub propagations: u64,
    /// Solver decisions across all attempts.
    pub decisions: u64,
    /// Solver restarts across all attempts.
    pub restarts: u64,
    /// CEGIS refinement rounds across all attempts.
    pub ef_rounds: u64,
    /// Per-phase wall time across all attempts.
    pub phases: PhaseTimes,
    /// SMT queries issued across all attempts.
    pub queries: usize,
    /// Type assignments examined (last attempt).
    pub typings: usize,
    /// How many retries were consumed.
    pub retries: u32,
    /// Pool worker that produced the outcome (0 in sequential runs).
    pub worker: u32,
    /// `true` when the outcome was replayed from a `--resume` journal
    /// instead of being verified in this process.
    pub resumed: bool,
    /// Per-attempt history, oldest first. Includes attempts inherited from
    /// a resumed journal record when the transform was requeued.
    pub attempts: Vec<Attempt>,
}

impl TransformOutcome {
    /// A synthetic outcome for bookkeeping paths (hung workers, resumed
    /// records) that never ran the verifier in this process.
    pub fn synthetic(name: &str, kind: OutcomeKind, detail: String) -> TransformOutcome {
        TransformOutcome {
            name: name.to_string(),
            kind,
            detail,
            certificates: Vec::new(),
            wall: Duration::ZERO,
            conflicts: 0,
            propagations: 0,
            decisions: 0,
            restarts: 0,
            ef_rounds: 0,
            phases: PhaseTimes::default(),
            queries: 0,
            typings: 0,
            retries: 0,
            worker: 0,
            resumed: false,
            attempts: Vec::new(),
        }
    }
}

/// Everything a corpus run produced, cancelled or not.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Per-transform outcomes, in corpus (input) order — regardless of the
    /// order in which parallel workers completed them.
    pub outcomes: Vec<TransformOutcome>,
    /// `true` if the run was cut short by cancellation.
    pub cancelled: bool,
    /// Transforms never attempted (cancellation or fail-fast stop).
    pub skipped: usize,
    /// Write-ahead journal appends that failed (I/O errors). The outcomes
    /// were still counted; a nonzero value means a later `--resume` would
    /// re-verify them.
    pub journal_errors: usize,
}

impl RunReport {
    /// Number of outcomes with the given kind.
    pub fn count(&self, kind: OutcomeKind) -> usize {
        self.outcomes.iter().filter(|o| o.kind == kind).count()
    }

    /// The process exit code mirroring the CLI contract: 130 after
    /// cancellation, 1 for any invalid/error, 2 for unknowns/hangs only,
    /// else 0.
    pub fn exit_code(&self) -> i32 {
        if self.cancelled {
            130
        } else if self.count(OutcomeKind::Invalid) > 0 || self.count(OutcomeKind::Error) > 0 {
            1
        } else if self.count(OutcomeKind::Unknown) > 0 || self.count(OutcomeKind::Hung) > 0 {
            2
        } else {
            0
        }
    }

    /// Serializes the report (schema `alive-report/v3`).
    ///
    /// v3 extends v2 with per-transform solver counters (`propagations`,
    /// `decisions`, `restarts`, `ef_rounds`) and a `phases` object giving
    /// microsecond wall time per verification phase.
    ///
    /// Transforms are listed in input order, so sequential and parallel
    /// runs of the same corpus produce identical reports apart from the
    /// volatile fields (`wall_ms`, per-attempt `wall_ms`, `phases`, and
    /// `worker` — scheduling noise by construction).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.outcomes.len() * 200);
        s.push_str("{\n  \"schema\": \"alive-report/v3\",\n");
        s.push_str(&format!("  \"cancelled\": {},\n", self.cancelled));
        s.push_str(&format!("  \"skipped\": {},\n", self.skipped));
        s.push_str(&format!(
            "  \"summary\": {{\"total\": {}, \"valid\": {}, \"invalid\": {}, \
             \"unknown\": {}, \"errors\": {}, \"hung\": {}}},\n",
            self.outcomes.len(),
            self.count(OutcomeKind::Valid),
            self.count(OutcomeKind::Invalid),
            self.count(OutcomeKind::Unknown),
            self.count(OutcomeKind::Error),
            self.count(OutcomeKind::Hung),
        ));
        s.push_str("  \"transforms\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let mut attempts = String::new();
            for (k, a) in o.attempts.iter().enumerate() {
                attempts.push_str(&format!(
                    "{{\"wall_ms\": {}, \"conflicts\": {}, \"outcome\": \"{}\"}}{}",
                    a.wall.as_millis(),
                    a.conflicts,
                    json_escape(&a.outcome),
                    if k + 1 == o.attempts.len() { "" } else { ", " },
                ));
            }
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"verdict\": \"{}\", \"reason\": \"{}\", \
                 \"wall_ms\": {}, \"conflicts\": {}, \"propagations\": {}, \
                 \"decisions\": {}, \"restarts\": {}, \"ef_rounds\": {}, \
                 \"queries\": {}, \"typings\": {}, \"retries\": {}, \"worker\": {}, \
                 \"resumed\": {}, \"phases\": {{\"typeck_us\": {}, \"encode_us\": {}, \
                 \"solve_us\": {}, \"check_us\": {}}}, \"attempts\": [{}]}}{}\n",
                json_escape(&o.name),
                o.kind.as_str(),
                json_escape(&o.detail),
                o.wall.as_millis(),
                o.conflicts,
                o.propagations,
                o.decisions,
                o.restarts,
                o.ef_rounds,
                o.queries,
                o.typings,
                o.retries,
                o.worker,
                o.resumed,
                o.phases.typeck.as_micros(),
                o.phases.encode.as_micros(),
                o.phases.solve.as_micros(),
                o.phases.check.as_micros(),
                attempts,
                if i + 1 == self.outcomes.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Should an `Unknown` with this reason be retried at a larger budget?
///
/// Counter exhaustion (conflicts, propagations, decisions) and the CEGIS
/// iteration limit are worth a second, bigger attempt. Deadline exhaustion
/// is not — re-arming the same timeout would just spend it again. Neither
/// are cancellation, injected faults, or internal errors.
fn is_retryable_reason(reason: &str) -> bool {
    (reason.contains("budget exhausted") || reason.contains("iteration limit"))
        && !reason.contains("cancelled")
        && !reason.contains("injected")
        && !reason.contains("internal error")
}

/// Builds the budget for one attempt: an absolute deadline, the (possibly
/// escalated) conflict limit, and the given cancel token.
fn attempt_budget(
    deadline: Option<Instant>,
    conflicts: Option<u64>,
    cancel: &CancelToken,
) -> Budget {
    let mut b = Budget::default().with_cancel(cancel.clone());
    b.deadline = deadline;
    b.conflicts = conflicts;
    b
}

/// Verifies `t` once under the given budget, with the driver-level panic
/// boundary (covering validation and type enumeration, which sit outside
/// the verifier's own per-typing isolation).
fn attempt(
    t: &Transform,
    config: &DriverConfig,
    budget: Budget,
) -> (Verdict, VerifyStats, Vec<Certificate>) {
    let mut vc = config.verify.clone();
    vc.ef.budget = budget;
    let caught = catch_unwind(AssertUnwindSafe(|| {
        if config.with_certificates {
            verify_with_certificates(t, &vc)
        } else {
            verify_with_stats(t, &vc).map(|(v, s)| (v, s, Vec::new()))
        }
    }));
    match caught {
        Ok(Ok((verdict, stats, certs))) => (verdict, stats, certs),
        Ok(Err(e)) => (
            Verdict::Unknown {
                reason: format!("error: {}", e.message),
            },
            VerifyStats::default(),
            Vec::new(),
        ),
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            (
                Verdict::Unknown {
                    reason: format!("internal error: {msg}"),
                },
                VerifyStats::default(),
                Vec::new(),
            )
        }
    }
}

/// Verifies one transform end to end: escalating-retry loop, per-attempt
/// budgets, attempt history. `cancel` is the token the attempt budgets
/// poll — the driver's own token in sequential runs, a per-task token in
/// supervised runs (so the watchdog can cut down one task without
/// cancelling its siblings). `scale` multiplies the configured conflict
/// budget and timeout (used to escalate requeued journal entries).
/// `on_attempt` is invoked with each attempt's absolute deadline just
/// before the attempt starts; the pool's watchdog uses it to know when a
/// worker is overdue.
pub(crate) fn verify_one(
    name: &str,
    t: &Transform,
    config: &DriverConfig,
    cancel: &CancelToken,
    scale: u32,
    worker: u32,
    mut on_attempt: impl FnMut(Option<Instant>),
) -> TransformOutcome {
    let start = Instant::now();
    let mut retries = 0u32;
    let mut totals = VerifyStats::default();
    let timeout = config.timeout.map(|d| d.saturating_mul(scale.max(1)));
    let mut budget_conflicts = config
        .conflict_budget
        .map(|c| c.saturating_mul(u64::from(scale.max(1))));
    let mut attempts: Vec<Attempt> = Vec::new();
    loop {
        let attempt_start = Instant::now();
        let deadline = timeout.and_then(|d| attempt_start.checked_add(d));
        on_attempt(deadline);
        let (verdict, stats, certificates) = attempt(
            t,
            config,
            attempt_budget(deadline, budget_conflicts, cancel),
        );
        let conflicts = stats.conflicts;
        totals.conflicts += stats.conflicts;
        totals.propagations += stats.propagations;
        totals.decisions += stats.decisions;
        totals.restarts += stats.restarts;
        totals.sat_calls += stats.sat_calls;
        totals.ef_rounds += stats.ef_rounds;
        totals.queries += stats.queries;
        totals.typings = stats.typings;
        totals.phases.absorb(&stats.phases);
        let (kind, detail) = match &verdict {
            Verdict::Valid { .. } => (OutcomeKind::Valid, verdict.to_string()),
            Verdict::Invalid(_) => (OutcomeKind::Invalid, verdict.to_string()),
            Verdict::Unknown { reason } => {
                if let Some(rest) = reason.strip_prefix("error: ") {
                    (OutcomeKind::Error, rest.to_string())
                } else {
                    (OutcomeKind::Unknown, reason.clone())
                }
            }
        };
        attempts.push(Attempt {
            wall: attempt_start.elapsed(),
            conflicts,
            outcome: match kind {
                OutcomeKind::Unknown => format!("unknown: {detail}"),
                k => k.as_str().to_string(),
            },
        });
        if kind == OutcomeKind::Unknown
            && retries < config.max_retries
            && budget_conflicts.is_some()
            && is_retryable_reason(&detail)
            && !cancel.is_cancelled()
        {
            retries += 1;
            budget_conflicts =
                budget_conflicts.map(|c| c.saturating_mul(config.retry_multiplier.max(2)));
            continue;
        }
        return TransformOutcome {
            name: name.to_string(),
            kind,
            detail,
            certificates,
            wall: start.elapsed(),
            conflicts: totals.conflicts,
            propagations: totals.propagations,
            decisions: totals.decisions,
            restarts: totals.restarts,
            ef_rounds: totals.ef_rounds,
            phases: totals.phases,
            queries: totals.queries,
            typings: totals.typings,
            retries,
            worker,
            resumed: false,
            attempts,
        };
    }
}

/// Verifies a single transform under the full resilient-driver treatment
/// (budgets, panic isolation, escalating retries) and returns its outcome.
/// This is the per-request entry point `alive serve` uses on a cache miss;
/// batch runs should prefer [`run_transforms`] or the supervised pool.
pub fn verify_single(name: &str, t: &Transform, config: &DriverConfig) -> TransformOutcome {
    verify_one(name, t, config, &config.cancel, 1, 0, |_| {})
}

/// Runs the whole corpus through the resilient driver.
///
/// Transforms are verified in order. Budget-exhausted transforms are
/// retried with an escalated conflict budget (up to
/// [`DriverConfig::max_retries`] times). Without
/// [`DriverConfig::keep_going`], the first invalid transform or hard error
/// stops the run, reporting the remainder as skipped; cancellation always
/// stops it, and the report says so.
pub fn run_transforms(transforms: &[(String, Transform)], config: &DriverConfig) -> RunReport {
    run_transforms_with(transforms, config, |_, _| {})
}

/// Like [`run_transforms`], invoking `observer` with each transform's index
/// and outcome as soon as it is decided (for incremental CLI output).
pub fn run_transforms_with(
    transforms: &[(String, Transform)],
    config: &DriverConfig,
    mut observer: impl FnMut(usize, &TransformOutcome),
) -> RunReport {
    let mut report = RunReport::default();
    for (i, (name, t)) in transforms.iter().enumerate() {
        if config.cancel.is_cancelled() {
            report.cancelled = true;
            report.skipped = transforms.len() - i;
            return report;
        }

        let outcome = verify_one(name, t, config, &config.cancel, 1, 0, |_| {});

        let kind = outcome.kind;
        let was_cancelled = config.cancel.is_cancelled()
            && kind == OutcomeKind::Unknown
            && outcome.detail.contains("cancelled");
        observer(i, &outcome);
        report.outcomes.push(outcome);

        if was_cancelled {
            report.cancelled = true;
            report.skipped = transforms.len() - i - 1;
            return report;
        }
        if !config.keep_going && matches!(kind, OutcomeKind::Invalid | OutcomeKind::Error) {
            report.skipped = transforms.len() - i - 1;
            return report;
        }
    }
    report
}
