//! The crash-safe verification journal.
//!
//! A corpus run that dies — `kill -9`, OOM, power loss — must not throw
//! away the verdicts it already earned. The supervised driver therefore
//! appends every completed outcome to a **write-ahead journal** before the
//! outcome is counted: an append-only JSONL file, fsync'd per record, with
//! one self-delimiting line per transform. `alive --resume <journal>`
//! replays the file, reuses every decided verdict, and requeues hung or
//! inconclusive entries under an escalated budget.
//!
//! # Record format (`alive-journal/v1`)
//!
//! Line 1 is a header carrying the config fingerprint; every other line is
//! one outcome record:
//!
//! ```text
//! {"journal":"alive-journal/v1","config":"<16 hex>","crc":"<16 hex>"}
//! {"key":"<16 hex>","name":"...","verdict":"valid","reason":"...",
//!  "wall_ms":12,"conflicts":34,"queries":1,"typings":2,"retries":0,
//!  "worker":3,"attempts":[{"wall_ms":12,"conflicts":34,"outcome":"valid"}],
//!  "crc":"<16 hex>"}
//! ```
//!
//! (shown wrapped; on disk each record is a single `\n`-terminated line).
//!
//! * `key` is an FNV-1a 64 hash of the transform's canonical printed text
//!   plus the config fingerprint, so a journal from a different corpus or
//!   different verifier settings never short-circuits a verdict.
//! * `crc` is an FNV-1a 64 hash of everything before the `,"crc"` suffix.
//!   A record is accepted only if its line is newline-terminated, its CRC
//!   matches, and every field parses strictly.
//!
//! # Torn-write recovery
//!
//! After a `kill -9` the final record may be torn: missing its newline,
//! truncated mid-field, or (on some filesystems) padded with garbage.
//! [`Journal::load`] stops at the first unparseable line and discards it
//! and everything after it — records are only ever appended, so a
//! malformed line means the tail of the file is not trustworthy. The
//! number of discarded lines is reported so the CLI can say so out loud.
//!
//! Re-running with `--resume` appends fresh records to the same file;
//! when a key appears more than once the **last** record wins, so a
//! requeued transform's escalated-budget verdict supersedes its earlier
//! `hung`/`unknown` entry.

use crate::driver::{json_escape, Attempt, OutcomeKind, TransformOutcome};
use crate::durable::{self, DurableFile};
use crate::verify::VerifyConfig;
use alive_ir::Transform;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// FNV-1a 64-bit hash (the journal needs no cryptographic strength — keys
/// guard against *accidental* mismatches, not adversaries).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The human-readable preimage of [`config_fingerprint`]: every verifier
/// setting that affects verdicts, as `field=value` pairs joined by `;`.
/// This string is stored alongside the fingerprint in journal and store
/// headers so a mismatch can be explained field by field
/// ([`fingerprint_diff`]) instead of refused with a bare hash.
pub fn config_description(vc: &VerifyConfig) -> String {
    let mut s = String::new();
    s.push_str("widths=");
    for w in &vc.typeck.widths {
        s.push_str(&format!("{w},"));
    }
    s.push_str(&format!(
        ";ptr={};max_assign={};cegis_iter={};seed_zero={}",
        vc.typeck.ptr_width, vc.typeck.max_assignments, vc.ef.max_iterations, vc.ef.seed_with_zero,
    ));
    s
}

/// A stable fingerprint of the verifier settings that affect verdicts:
/// type-enumeration widths and caps plus the CEGIS iteration policy.
/// Budgets and timeouts are deliberately excluded — they affect whether a
/// verdict is reached, not which verdict is correct, and `--resume` exists
/// precisely to retry inconclusive entries under different budgets.
pub fn config_fingerprint(vc: &VerifyConfig) -> u64 {
    fnv1a64(config_description(vc).as_bytes())
}

/// Compares two [`config_description`] strings field by field, returning
/// `(field, current value, recorded value)` for every field that differs.
/// A field present on only one side reports the other as `"<absent>"`.
pub fn fingerprint_diff(current: &str, recorded: &str) -> Vec<(String, String, String)> {
    fn fields(desc: &str) -> Vec<(String, String)> {
        desc.split(';')
            .filter(|part| !part.is_empty())
            .map(|part| match part.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => (part.to_string(), String::new()),
            })
            .collect()
    }
    let ours = fields(current);
    let theirs = fields(recorded);
    let mut out = Vec::new();
    let absent = || "<absent>".to_string();
    for (k, v) in &ours {
        match theirs.iter().find(|(tk, _)| tk == k) {
            Some((_, tv)) if tv == v => {}
            Some((_, tv)) => out.push((k.clone(), v.clone(), tv.clone())),
            None => out.push((k.clone(), v.clone(), absent())),
        }
    }
    for (k, v) in &theirs {
        if !ours.iter().any(|(ok, _)| ok == k) {
            out.push((k.clone(), absent(), v.clone()));
        }
    }
    out
}

/// The journal key for one transform under one config: a content hash of
/// the transform's canonical printed form and the config fingerprint,
/// rendered as 16 lower-case hex digits.
pub fn transform_key(t: &Transform, fingerprint: u64) -> String {
    let text = format!("{t}\x00{fingerprint:016x}");
    format!("{:016x}", fnv1a64(text.as_bytes()))
}

/// One parsed journal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// Content key (see [`transform_key`]).
    pub key: String,
    /// Transform name at the time of the run.
    pub name: String,
    /// Final classification.
    pub verdict: OutcomeKind,
    /// Reason / verdict detail.
    pub reason: String,
    /// Total wall milliseconds across attempts.
    pub wall_ms: u64,
    /// SAT conflicts across attempts.
    pub conflicts: u64,
    /// SMT queries across attempts.
    pub queries: u64,
    /// Type assignments examined.
    pub typings: u64,
    /// Retries consumed.
    pub retries: u32,
    /// Worker id that produced the record.
    pub worker: u32,
    /// Per-attempt history: (wall_ms, conflicts, outcome label).
    pub attempts: Vec<(u64, u64, String)>,
}

impl JournalRecord {
    /// Converts a live outcome into its journal form.
    pub fn from_outcome(key: &str, o: &TransformOutcome) -> JournalRecord {
        JournalRecord {
            key: key.to_string(),
            name: o.name.clone(),
            verdict: o.kind,
            reason: o.detail.clone(),
            wall_ms: o.wall.as_millis() as u64,
            conflicts: o.conflicts,
            queries: o.queries as u64,
            typings: o.typings as u64,
            retries: o.retries,
            worker: o.worker,
            attempts: o
                .attempts
                .iter()
                .map(|a| (a.wall.as_millis() as u64, a.conflicts, a.outcome.clone()))
                .collect(),
        }
    }

    /// Reconstructs a replayable outcome (marked `resumed`) from the
    /// journal form. Certificates are not journaled — `--proof` re-runs
    /// are expected to re-verify. The extended v3 counters (propagations,
    /// decisions, restarts, CEGIS rounds, per-phase timings) are not part
    /// of the `alive-journal/v1` record and replay as zero.
    pub fn to_outcome(&self) -> TransformOutcome {
        TransformOutcome {
            name: self.name.clone(),
            kind: self.verdict,
            detail: self.reason.clone(),
            certificates: Vec::new(),
            wall: Duration::from_millis(self.wall_ms),
            conflicts: self.conflicts,
            propagations: 0,
            decisions: 0,
            restarts: 0,
            ef_rounds: 0,
            phases: crate::verify::PhaseTimes::default(),
            queries: self.queries as usize,
            typings: self.typings as usize,
            retries: self.retries,
            worker: self.worker,
            resumed: true,
            attempts: self
                .attempts
                .iter()
                .map(|(wall_ms, conflicts, outcome)| Attempt {
                    wall: Duration::from_millis(*wall_ms),
                    conflicts: *conflicts,
                    outcome: outcome.clone(),
                })
                .collect(),
        }
    }

    /// Serializes the record body (everything before the CRC suffix).
    fn body(&self) -> String {
        let mut attempts = String::new();
        for (i, (wall_ms, conflicts, outcome)) in self.attempts.iter().enumerate() {
            attempts.push_str(&format!(
                "{{\"wall_ms\":{wall_ms},\"conflicts\":{conflicts},\"outcome\":\"{}\"}}{}",
                json_escape(outcome),
                if i + 1 == self.attempts.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        format!(
            "{{\"key\":\"{}\",\"name\":\"{}\",\"verdict\":\"{}\",\"reason\":\"{}\",\
             \"wall_ms\":{},\"conflicts\":{},\"queries\":{},\"typings\":{},\
             \"retries\":{},\"worker\":{},\"attempts\":[{}]",
            self.key,
            json_escape(&self.name),
            self.verdict.as_str(),
            json_escape(&self.reason),
            self.wall_ms,
            self.conflicts,
            self.queries,
            self.typings,
            self.retries,
            self.worker,
            attempts,
        )
    }

    /// Serializes one full, CRC-sealed journal line (without the newline).
    pub fn to_line(&self) -> String {
        seal(self.body())
    }

    /// Parses one journal line (CRC check included).
    pub fn parse_line(line: &str) -> Option<JournalRecord> {
        let body = unseal(line)?;
        let mut sc = Scanner::new(body);
        sc.lit("{\"key\":\"")?;
        let key = sc.hex16()?;
        sc.lit("\",\"name\":\"")?;
        let name = sc.string_body()?;
        sc.lit("\",\"verdict\":\"")?;
        let verdict = OutcomeKind::from_label(&sc.string_body()?)?;
        sc.lit("\",\"reason\":\"")?;
        let reason = sc.string_body()?;
        sc.lit("\",\"wall_ms\":")?;
        let wall_ms = sc.number()?;
        sc.lit(",\"conflicts\":")?;
        let conflicts = sc.number()?;
        sc.lit(",\"queries\":")?;
        let queries = sc.number()?;
        sc.lit(",\"typings\":")?;
        let typings = sc.number()?;
        sc.lit(",\"retries\":")?;
        let retries = u32::try_from(sc.number()?).ok()?;
        sc.lit(",\"worker\":")?;
        let worker = u32::try_from(sc.number()?).ok()?;
        sc.lit(",\"attempts\":[")?;
        let mut attempts = Vec::new();
        if !sc.try_lit("]") {
            loop {
                sc.lit("{\"wall_ms\":")?;
                let a_wall = sc.number()?;
                sc.lit(",\"conflicts\":")?;
                let a_conflicts = sc.number()?;
                sc.lit(",\"outcome\":\"")?;
                let a_outcome = sc.string_body()?;
                sc.lit("\"}")?;
                attempts.push((a_wall, a_conflicts, a_outcome));
                if sc.try_lit("]") {
                    break;
                }
                sc.lit(",")?;
            }
        }
        if !sc.at_end() {
            return None;
        }
        Some(JournalRecord {
            key,
            name,
            verdict,
            reason,
            wall_ms,
            conflicts,
            queries,
            typings,
            retries,
            worker,
            attempts,
        })
    }
}

/// Appends the CRC suffix: `body` → `body,"crc":"<16 hex>"}`. Shared with
/// the verdict store, which reuses the same line-sealing discipline.
pub(crate) fn seal(body: String) -> String {
    let crc = fnv1a64(body.as_bytes());
    format!("{body},\"crc\":\"{crc:016x}\"}}")
}

/// Strips and verifies the CRC suffix, returning the body.
pub(crate) fn unseal(line: &str) -> Option<&str> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    let rest = line.strip_suffix("\"}")?;
    let marker = ",\"crc\":\"";
    let pos = rest.rfind(marker)?;
    let (body, crc_hex) = rest.split_at(pos);
    let crc_hex = &crc_hex[marker.len()..];
    if crc_hex.len() != 16 {
        return None;
    }
    let want = u64::from_str_radix(crc_hex, 16).ok()?;
    if fnv1a64(body.as_bytes()) != want {
        return None;
    }
    Some(body)
}

/// Strict cursor over a record body; every helper returns `None` on any
/// deviation from the exact written format (that is the torn-write check).
/// Shared with the verdict store's record parser.
pub(crate) struct Scanner<'a> {
    rest: &'a str,
}

impl<'a> Scanner<'a> {
    pub(crate) fn new(s: &'a str) -> Scanner<'a> {
        Scanner { rest: s }
    }

    pub(crate) fn lit(&mut self, lit: &str) -> Option<()> {
        self.rest = self.rest.strip_prefix(lit)?;
        Some(())
    }

    pub(crate) fn try_lit(&mut self, lit: &str) -> bool {
        if let Some(r) = self.rest.strip_prefix(lit) {
            self.rest = r;
            true
        } else {
            false
        }
    }

    pub(crate) fn at_end(&self) -> bool {
        self.rest.is_empty()
    }

    pub(crate) fn hex16(&mut self) -> Option<String> {
        if self.rest.len() < 16 {
            return None;
        }
        let (hex, rest) = self.rest.split_at(16);
        if !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        self.rest = rest;
        Some(hex.to_string())
    }

    pub(crate) fn number(&mut self) -> Option<u64> {
        let end = self
            .rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.rest.len());
        if end == 0 {
            return None;
        }
        let (digits, rest) = self.rest.split_at(end);
        self.rest = rest;
        digits.parse().ok()
    }

    /// Reads an escaped JSON string body up to (not including) the closing
    /// quote, leaving the cursor on the quote.
    pub(crate) fn string_body(&mut self) -> Option<String> {
        let mut out = String::new();
        let rest = self.rest;
        let mut chars = rest.char_indices();
        loop {
            let (i, c) = chars.next()?;
            match c {
                '"' => {
                    self.rest = &rest[i..];
                    return Some(out);
                }
                '\\' => {
                    let (_, esc) = chars.next()?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) = chars.next()?;
                                code = code * 16 + h.to_digit(16)?;
                            }
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                c => out.push(c),
            }
        }
    }
}

/// What [`Journal::load`] recovered from disk.
#[derive(Debug, Default)]
pub struct LoadedJournal {
    /// Accepted records, in file order (duplicate keys not collapsed).
    pub records: Vec<JournalRecord>,
    /// Lines discarded as torn or corrupt (counts the first bad line and
    /// everything after it).
    pub discarded: usize,
    /// Config fingerprint from the header, if a header was readable.
    pub fingerprint: Option<u64>,
    /// Config description from the header, if the journal was written by a
    /// version that records one ([`Journal::create_described`]).
    pub description: Option<String>,
}

/// An open, append-only journal. Every [`Journal::append`] writes one
/// sealed line and fsyncs before returning, so a record that the caller
/// has seen acknowledged survives `kill -9`. All writes go through the
/// [`durable`] seam: a failed fsync poisons the handle (fsyncgate), and
/// every later append refuses rather than pretend the record landed.
#[derive(Debug)]
pub struct Journal {
    file: DurableFile,
    path: PathBuf,
}

impl Journal {
    /// Creates (truncating) a fresh journal and writes the sealed header.
    pub fn create(path: &Path, fingerprint: u64) -> std::io::Result<Journal> {
        Journal::create_described(path, fingerprint, None)
    }

    /// Like [`Journal::create`], also recording the human-readable config
    /// description in the header so a later `--resume` under different
    /// settings can say *which* fields changed ([`fingerprint_diff`]).
    pub fn create_described(
        path: &Path,
        fingerprint: u64,
        description: Option<&str>,
    ) -> std::io::Result<Journal> {
        let mut file = durable::create(path)?;
        let mut body =
            format!("{{\"journal\":\"alive-journal/v1\",\"config\":\"{fingerprint:016x}\"");
        if let Some(desc) = description {
            body.push_str(&format!(",\"desc\":\"{}\"", json_escape(desc)));
        }
        let header = seal(body);
        durable::append(&mut file, format!("{header}\n").as_bytes())?;
        durable::sync(&file)?;
        // The header is durable; now make the journal's *name* durable too,
        // so a crash right after create cannot forget the file existed.
        durable::fsync_parent(path)?;
        Ok(Journal {
            file: DurableFile::from_file(file),
            path: path.to_path_buf(),
        })
    }

    /// Opens an existing journal for appending (the `--resume` path).
    ///
    /// A torn (non-newline-terminated) tail left by `kill -9` is truncated
    /// away first: [`Journal::load`] already refuses it, and leaving it in
    /// place would turn it into a mid-file corrupt line that poisons every
    /// record appended after it under the discard-everything-after rule.
    pub fn open_append(path: &Path) -> std::io::Result<Journal> {
        let mut file = DurableFile::open_append(path)?;
        let mut contents = Vec::new();
        {
            let mut reader = file.file();
            reader.read_to_end(&mut contents)?;
        }
        if !contents.is_empty() && contents.last() != Some(&b'\n') {
            let keep = contents
                .iter()
                .rposition(|&b| b == b'\n')
                .map_or(0, |p| p + 1);
            file.truncate(keep as u64)?;
        }
        Ok(Journal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// The journal's path (for messages).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one outcome under `key`, fsync'ing before returning. The
    /// record counts as journaled only when this returns `Ok`; a failed
    /// sync poisons the handle, and later appends refuse (the torn tail
    /// this leaves behind is exactly what [`Journal::load`] recovers
    /// from).
    pub fn append(&mut self, key: &str, outcome: &TransformOutcome) -> std::io::Result<()> {
        let line = JournalRecord::from_outcome(key, outcome).to_line();
        self.file.append(format!("{line}\n").as_bytes())?;
        self.file.sync()
    }

    /// Loads a journal from disk, applying the torn-write recovery rules:
    /// parse lines in order; the first line that fails the CRC or strict
    /// field parse — or a final line missing its newline — invalidates
    /// itself and every later line.
    pub fn load(path: &Path) -> std::io::Result<LoadedJournal> {
        let text = std::fs::read_to_string(path)?;
        let mut loaded = LoadedJournal::default();
        let mut lines: Vec<&str> = text.split('\n').collect();
        // `split` yields a trailing "" for a newline-terminated file; a
        // non-empty last element is a torn tail.
        let torn_tail = match lines.last() {
            Some(&"") => {
                lines.pop();
                false
            }
            Some(_) => true,
            None => false,
        };
        let total = lines.len();
        for (i, line) in lines.iter().enumerate() {
            let is_last = i + 1 == total;
            if is_last && torn_tail {
                loaded.discarded += 1;
                break;
            }
            if i == 0 {
                if let Some((fp, desc)) = parse_header(line) {
                    loaded.fingerprint = Some(fp);
                    loaded.description = desc;
                    continue;
                }
                // No (valid) header: fall through and try it as a record,
                // so headerless journals from tooling still load.
            }
            match JournalRecord::parse_line(line) {
                Some(rec) => loaded.records.push(rec),
                None => {
                    loaded.discarded += total - i;
                    break;
                }
            }
        }
        Ok(loaded)
    }
}

/// Parses the sealed header line, returning the config fingerprint and
/// (when the writing version recorded one) the config description.
fn parse_header(line: &str) -> Option<(u64, Option<String>)> {
    let body = unseal(line)?;
    let mut sc = Scanner::new(body);
    sc.lit("{\"journal\":\"alive-journal/v1\",\"config\":\"")?;
    let fp = u64::from_str_radix(&sc.hex16()?, 16).ok()?;
    sc.lit("\"")?;
    let desc = if sc.try_lit(",\"desc\":\"") {
        let d = sc.string_body()?;
        sc.lit("\"")?;
        Some(d)
    } else {
        None
    };
    if !sc.at_end() {
        return None;
    }
    Some((fp, desc))
}

/// How a resumed run should treat each transform of the corpus.
#[derive(Debug, Default)]
pub struct ResumePlan {
    /// Corpus indices whose verdict is replayed from the journal, with the
    /// record it came from: `valid`, `invalid`, and `error` records.
    pub reuse: Vec<(usize, JournalRecord)>,
    /// Corpus indices journaled as `hung`/`unknown`: re-verified under an
    /// escalated budget, carrying their prior attempt history.
    pub requeue: Vec<(usize, JournalRecord)>,
    /// Corpus indices with no journal record: verified normally.
    pub fresh: Vec<usize>,
}

/// Partitions a corpus against the journal's records. `keys[i]` must be
/// [`transform_key`] of the i-th corpus transform; when a key occurs in
/// several records the last one wins (requeues append their new verdict
/// after the superseded one).
pub fn plan_resume(records: &[JournalRecord], keys: &[String]) -> ResumePlan {
    let mut by_key: std::collections::HashMap<&str, &JournalRecord> = Default::default();
    for rec in records {
        by_key.insert(rec.key.as_str(), rec);
    }
    let mut plan = ResumePlan::default();
    for (i, key) in keys.iter().enumerate() {
        match by_key.get(key.as_str()) {
            Some(rec) => match rec.verdict {
                OutcomeKind::Valid | OutcomeKind::Invalid | OutcomeKind::Error => {
                    plan.reuse.push((i, (*rec).clone()));
                }
                OutcomeKind::Unknown | OutcomeKind::Hung => {
                    plan.requeue.push((i, (*rec).clone()));
                }
            },
            None => plan.fresh.push(i),
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_through_seal() {
        let fingerprint = 0xfaa9_754c_5068_16cf_u64;
        let header = seal(format!(
            "{{\"journal\":\"alive-journal/v1\",\"config\":\"{fingerprint:016x}\""
        ));
        assert_eq!(parse_header(&header), Some((fingerprint, None)));
        // A header is not a record, and a record is not a header.
        assert!(JournalRecord::parse_line(&header).is_none());
    }

    #[test]
    fn described_header_round_trips() {
        let dir = std::env::temp_dir().join("alive-journal-desc-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let desc = "widths=4,8,;ptr=64;max_assign=4;cegis_iter=8;seed_zero=true";
        Journal::create_described(&path, 0xabcd, Some(desc)).unwrap();
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.fingerprint, Some(0xabcd));
        assert_eq!(loaded.description.as_deref(), Some(desc));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_diff_names_the_changed_fields() {
        let a = "widths=4,8,;ptr=64;max_assign=4;cegis_iter=8;seed_zero=true";
        let b = "widths=4,8,16,;ptr=64;max_assign=4;cegis_iter=32;seed_zero=true";
        let diff = fingerprint_diff(a, b);
        assert_eq!(
            diff,
            vec![
                (
                    "widths".to_string(),
                    "4,8,".to_string(),
                    "4,8,16,".to_string()
                ),
                ("cegis_iter".to_string(), "8".to_string(), "32".to_string()),
            ]
        );
        assert!(fingerprint_diff(a, a).is_empty());
        // A field only one side knows about is reported as absent.
        let c = "widths=4,8,;ptr=64;max_assign=4;cegis_iter=8";
        let diff = fingerprint_diff(a, c);
        assert_eq!(
            diff,
            vec![(
                "seed_zero".to_string(),
                "true".to_string(),
                "<absent>".to_string()
            )]
        );
    }

    fn sample_outcome() -> TransformOutcome {
        TransformOutcome {
            name: "with \"quotes\"\nand newline".to_string(),
            kind: OutcomeKind::Unknown,
            detail: "conflict budget exhausted".to_string(),
            certificates: Vec::new(),
            wall: Duration::from_millis(12),
            conflicts: 34,
            propagations: 120,
            decisions: 17,
            restarts: 1,
            ef_rounds: 2,
            phases: crate::verify::PhaseTimes::default(),
            queries: 5,
            typings: 2,
            retries: 1,
            worker: 3,
            resumed: false,
            attempts: vec![
                Attempt {
                    wall: Duration::from_millis(4),
                    conflicts: 10,
                    outcome: "unknown: conflict budget exhausted".to_string(),
                },
                Attempt {
                    wall: Duration::from_millis(8),
                    conflicts: 24,
                    outcome: "unknown: conflict budget exhausted".to_string(),
                },
            ],
        }
    }

    #[test]
    fn record_round_trips_through_its_line_form() {
        let rec = JournalRecord::from_outcome("00aabbccddeeff11", &sample_outcome());
        let line = rec.to_line();
        let back = JournalRecord::parse_line(&line).expect("parse");
        assert_eq!(back, rec);
        let outcome = back.to_outcome();
        assert!(outcome.resumed);
        assert_eq!(outcome.kind, OutcomeKind::Unknown);
        assert_eq!(outcome.attempts.len(), 2);
    }

    #[test]
    fn corrupted_lines_are_rejected() {
        let rec = JournalRecord::from_outcome("00aabbccddeeff11", &sample_outcome());
        let line = rec.to_line();
        // Truncations at every length must fail the CRC or the parse.
        for cut in 1..line.len() {
            assert!(
                JournalRecord::parse_line(&line[..cut]).is_none(),
                "truncation at {cut} parsed"
            );
        }
        // A flipped byte in the middle fails the CRC.
        let mut bytes = line.clone().into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        let flipped = String::from_utf8_lossy(&bytes).into_owned();
        assert!(JournalRecord::parse_line(&flipped).is_none());
    }

    #[test]
    fn key_depends_on_config_fingerprint() {
        let t = alive_ir::parse_transform("%r = add %x, %x\n=>\n%r = shl %x, 1").unwrap();
        let a = transform_key(&t, 1);
        let b = transform_key(&t, 2);
        assert_ne!(a, b);
        assert_eq!(a, transform_key(&t, 1));
    }
}
