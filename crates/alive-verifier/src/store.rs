//! The persistent content-addressed verdict store.
//!
//! `alive serve` must answer "has this optimization ever been verified
//! under these settings?" in microseconds. The store is that answer's
//! home: an append-only JSONL file mapping the **canonical content hash**
//! of a transform (see [`alive_ir::canon`]) to its verdict, reusing the
//! journal's CRC-sealed line discipline ([`crate::journal`]) so a torn
//! tail after `kill -9` is truncated, never trusted.
//!
//! # Record format (`alive-store/v1`)
//!
//! Line 1 is a sealed header binding the store to a config fingerprint
//! and an eviction epoch; every other line is one verdict record:
//!
//! ```text
//! {"store":"alive-store/v1","config":"<16 hex>","epoch":0,
//!  "desc":"widths=4,8,...","crc":"<16 hex>"}
//! {"hash":"<16 hex>","canon":"%v1 = add %v0, C1\n=>\n%v1 = %v0",
//!  "verdict":"valid","reason":"...","wall_ms":1412,"cert":"",
//!  "crc":"<16 hex>"}
//! ```
//!
//! (wrapped for display; each record is a single `\n`-terminated line).
//!
//! * `hash` is the FNV-1a 64 of the canonical text. A 64-bit hash can
//!   collide, so the canonical text itself is stored and **compared on
//!   every lookup** — the hash only buckets, the text decides.
//! * `cert` is a certificate reference (a path or slug), empty when the
//!   verdict carries none.
//! * When one hash appears in several records the **last wins**, so
//!   re-verification under an escalated budget (say `unknown` → `valid`)
//!   supersedes the stale row without rewriting the file.
//!
//! # Epoch-based eviction
//!
//! The header binds every record to `(config fingerprint, epoch)`. Opening
//! a store whose header disagrees with the caller's fingerprint or epoch
//! **evicts** it: the old file is rotated to `<path>.evicted` and a fresh
//! store is started. Bumping `--epoch` is therefore the operator's "the
//! toolchain changed, trust nothing" lever, and a config change can never
//! replay verdicts computed under different verifier semantics.

use crate::driver::{json_escape, OutcomeKind};
use crate::journal::{fnv1a64, seal, unseal, Scanner};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// One cached verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreRecord {
    /// FNV-1a 64 of `canon`, 16 lower-case hex digits.
    pub hash: String,
    /// The canonical printed text of the transform (the real key).
    pub canon: String,
    /// Cached classification.
    pub verdict: OutcomeKind,
    /// Verdict detail (counterexample text, error message, ...).
    pub reason: String,
    /// Wall milliseconds the original verification took.
    pub wall_ms: u64,
    /// Certificate reference (path or slug); empty when none.
    pub cert: String,
}

impl StoreRecord {
    fn body(&self) -> String {
        format!(
            "{{\"hash\":\"{}\",\"canon\":\"{}\",\"verdict\":\"{}\",\"reason\":\"{}\",\
             \"wall_ms\":{},\"cert\":\"{}\"",
            self.hash,
            json_escape(&self.canon),
            self.verdict.as_str(),
            json_escape(&self.reason),
            self.wall_ms,
            json_escape(&self.cert),
        )
    }

    /// Serializes one full, CRC-sealed store line (without the newline).
    pub fn to_line(&self) -> String {
        seal(self.body())
    }

    /// Parses one store line (CRC check included).
    pub fn parse_line(line: &str) -> Option<StoreRecord> {
        let body = unseal(line)?;
        let mut sc = Scanner::new(body);
        sc.lit("{\"hash\":\"")?;
        let hash = sc.hex16()?;
        sc.lit("\",\"canon\":\"")?;
        let canon = sc.string_body()?;
        sc.lit("\",\"verdict\":\"")?;
        let verdict = OutcomeKind::from_label(&sc.string_body()?)?;
        sc.lit("\",\"reason\":\"")?;
        let reason = sc.string_body()?;
        sc.lit("\",\"wall_ms\":")?;
        let wall_ms = sc.number()?;
        sc.lit(",\"cert\":\"")?;
        let cert = sc.string_body()?;
        sc.lit("\"")?;
        if !sc.at_end() {
            return None;
        }
        Some(StoreRecord {
            hash,
            canon,
            verdict,
            reason,
            wall_ms,
            cert,
        })
    }
}

/// What [`VerdictStore::open`] found on disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreOpen {
    /// No store existed; a fresh one was created.
    Created,
    /// A matching store was loaded.
    Loaded {
        /// Distinct cached verdicts available after dedup.
        records: usize,
        /// Torn or corrupt lines discarded from the tail.
        discarded: usize,
    },
    /// The store's header disagreed with the caller's `(config, epoch)`;
    /// the old file was rotated to `<path>.evicted` and a fresh store
    /// started.
    Evicted {
        /// Fingerprint the old store was bound to.
        prior_config: u64,
        /// Epoch the old store was bound to.
        prior_epoch: u64,
    },
}

/// An open verdict store: in-memory index over an append-only, CRC-sealed
/// JSONL file. Every [`VerdictStore::insert`] is fsync'd before returning.
#[derive(Debug)]
pub struct VerdictStore {
    file: File,
    path: PathBuf,
    fingerprint: u64,
    epoch: u64,
    /// hash (as u64) → index into `records`; last inserted wins.
    index: HashMap<u64, usize>,
    records: Vec<StoreRecord>,
}

/// Path an evicted store is rotated to: `.evicted` is *appended*
/// (`store.jsonl` → `store.jsonl.evicted`), never substituted for the
/// existing extension, so the original file name stays recognizable.
pub fn evicted_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".evicted");
    std::path::PathBuf::from(name)
}

impl VerdictStore {
    /// Opens (or creates) the store at `path`, bound to the given config
    /// fingerprint and eviction epoch. A header mismatch evicts the old
    /// store (see module docs); a torn tail is truncated away.
    pub fn open(
        path: &Path,
        fingerprint: u64,
        epoch: u64,
        description: Option<&str>,
    ) -> std::io::Result<(VerdictStore, StoreOpen)> {
        if !path.exists() {
            let store = VerdictStore::create(path, fingerprint, epoch, description)?;
            return Ok((store, StoreOpen::Created));
        }
        let text = std::fs::read_to_string(path)?;
        let mut lines = text.split('\n');
        let header = lines.next().and_then(parse_store_header);
        match header {
            Some((fp, ep)) if fp == fingerprint && ep == epoch => {}
            other => {
                // Wrong config, wrong epoch, or unreadable header: never
                // serve these verdicts. Keep the old file around for
                // post-mortems rather than deleting data.
                let _ = std::fs::rename(path, evicted_path(path));
                let store = VerdictStore::create(path, fingerprint, epoch, description)?;
                let (prior_config, prior_epoch) = other.unwrap_or((0, 0));
                return Ok((
                    store,
                    StoreOpen::Evicted {
                        prior_config,
                        prior_epoch,
                    },
                ));
            }
        }
        // Parse records; stop at the first bad line and truncate the file
        // to the good prefix (same discard-everything-after rule as the
        // journal: appends-only means a bad line poisons the tail).
        let mut records = Vec::new();
        let mut good_bytes = text.find('\n').map_or(text.len(), |p| p + 1);
        let mut discarded = 0usize;
        let mut rest: Vec<&str> = lines.collect();
        let torn_tail = match rest.last() {
            Some(&"") => {
                rest.pop();
                false
            }
            Some(_) => true,
            None => false,
        };
        let total = rest.len();
        for (i, line) in rest.iter().enumerate() {
            if i + 1 == total && torn_tail {
                discarded += 1;
                break;
            }
            match StoreRecord::parse_line(line) {
                Some(rec) => {
                    good_bytes += line.len() + 1;
                    records.push(rec);
                }
                None => {
                    discarded += total - i;
                    break;
                }
            }
        }
        let file = OpenOptions::new().read(true).append(true).open(path)?;
        if (good_bytes as u64) < file.metadata()?.len() {
            file.set_len(good_bytes as u64)?;
            file.sync_data()?;
        }
        let mut index = HashMap::with_capacity(records.len());
        for (i, rec) in records.iter().enumerate() {
            if let Ok(h) = u64::from_str_radix(&rec.hash, 16) {
                index.insert(h, i);
            }
        }
        let distinct = index.len();
        Ok((
            VerdictStore {
                file,
                path: path.to_path_buf(),
                fingerprint,
                epoch,
                index,
                records,
            },
            StoreOpen::Loaded {
                records: distinct,
                discarded,
            },
        ))
    }

    fn create(
        path: &Path,
        fingerprint: u64,
        epoch: u64,
        description: Option<&str>,
    ) -> std::io::Result<VerdictStore> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut body = format!(
            "{{\"store\":\"alive-store/v1\",\"config\":\"{fingerprint:016x}\",\"epoch\":{epoch}"
        );
        if let Some(desc) = description {
            body.push_str(&format!(",\"desc\":\"{}\"", json_escape(desc)));
        }
        let header = seal(body);
        file.write_all(header.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        // Re-open in append mode so later inserts cannot clobber the header.
        drop(file);
        let file = OpenOptions::new().read(true).append(true).open(path)?;
        Ok(VerdictStore {
            file,
            path: path.to_path_buf(),
            fingerprint,
            epoch,
            index: HashMap::new(),
            records: Vec::new(),
        })
    }

    /// The store's path (for messages).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The config fingerprint this store is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The eviction epoch this store is bound to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of distinct cached verdicts.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Looks up the cached verdict for a transform's canonical text.
    /// Returns `None` on a hash-bucket hit whose stored canonical text
    /// differs (a 64-bit collision): colliding entries must re-verify.
    pub fn lookup(&self, canon: &str) -> Option<&StoreRecord> {
        let h = fnv1a64(canon.as_bytes());
        let rec = &self.records[*self.index.get(&h)?];
        (rec.canon == canon).then_some(rec)
    }

    /// Inserts (or supersedes) the verdict for a canonical text, fsync'ing
    /// the record before returning.
    pub fn insert(
        &mut self,
        canon: &str,
        verdict: OutcomeKind,
        reason: &str,
        wall_ms: u64,
        cert: &str,
    ) -> std::io::Result<()> {
        let h = fnv1a64(canon.as_bytes());
        let rec = StoreRecord {
            hash: format!("{h:016x}"),
            canon: canon.to_string(),
            verdict,
            reason: reason.to_string(),
            wall_ms,
            cert: cert.to_string(),
        };
        let line = rec.to_line();
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.sync_data()?;
        self.index.insert(h, self.records.len());
        self.records.push(rec);
        Ok(())
    }
}

/// Parses the sealed store header, returning `(config, epoch)`. The
/// description field, when present, is tolerated and ignored here — the
/// fingerprint is what gates reuse.
fn parse_store_header(line: &str) -> Option<(u64, u64)> {
    let body = unseal(line)?;
    let mut sc = Scanner::new(body);
    sc.lit("{\"store\":\"alive-store/v1\",\"config\":\"")?;
    let fp = u64::from_str_radix(&sc.hex16()?, 16).ok()?;
    sc.lit("\",\"epoch\":")?;
    let epoch = sc.number()?;
    if sc.try_lit(",\"desc\":\"") {
        sc.string_body()?;
        sc.lit("\"")?;
    }
    if !sc.at_end() {
        return None;
    }
    Some((fp, epoch))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("alive-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(evicted_path(&path)).ok();
        path
    }

    const CANON: &str = "%v1 = add %v0, C1\n=>\n%v1 = %v0";

    #[test]
    fn record_round_trips() {
        let rec = StoreRecord {
            hash: format!("{:016x}", fnv1a64(CANON.as_bytes())),
            canon: CANON.to_string(),
            verdict: OutcomeKind::Invalid,
            reason: "counterexample:\n%x = 1".to_string(),
            wall_ms: 1412,
            cert: "certs/add-identity.cert".to_string(),
        };
        let line = rec.to_line();
        assert_eq!(StoreRecord::parse_line(&line), Some(rec));
        // Any truncation fails the CRC or the strict parse.
        for cut in 1..line.len() {
            assert!(StoreRecord::parse_line(&line[..cut]).is_none());
        }
    }

    #[test]
    fn store_persists_across_reopen() {
        let path = tmp("persist.jsonl");
        {
            let (mut store, how) = VerdictStore::open(&path, 42, 0, Some("widths=4,")).unwrap();
            assert_eq!(how, StoreOpen::Created);
            assert!(store.lookup(CANON).is_none());
            store
                .insert(CANON, OutcomeKind::Valid, "valid", 12, "")
                .unwrap();
            assert_eq!(store.lookup(CANON).unwrap().verdict, OutcomeKind::Valid);
        }
        let (store, how) = VerdictStore::open(&path, 42, 0, Some("widths=4,")).unwrap();
        assert_eq!(
            how,
            StoreOpen::Loaded {
                records: 1,
                discarded: 0
            }
        );
        let rec = store.lookup(CANON).unwrap();
        assert_eq!(rec.verdict, OutcomeKind::Valid);
        assert_eq!(rec.wall_ms, 12);
    }

    #[test]
    fn last_record_wins() {
        let path = tmp("supersede.jsonl");
        let (mut store, _) = VerdictStore::open(&path, 1, 0, None).unwrap();
        store
            .insert(CANON, OutcomeKind::Unknown, "budget", 5, "")
            .unwrap();
        store
            .insert(CANON, OutcomeKind::Valid, "valid", 90, "")
            .unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.lookup(CANON).unwrap().verdict, OutcomeKind::Valid);
        // And after a reload.
        drop(store);
        let (store, _) = VerdictStore::open(&path, 1, 0, None).unwrap();
        assert_eq!(store.lookup(CANON).unwrap().verdict, OutcomeKind::Valid);
    }

    #[test]
    fn config_or_epoch_mismatch_evicts() {
        let path = tmp("evict.jsonl");
        {
            let (mut store, _) = VerdictStore::open(&path, 7, 3, None).unwrap();
            store
                .insert(CANON, OutcomeKind::Valid, "valid", 1, "")
                .unwrap();
        }
        // Same config, bumped epoch: evicted.
        let (store, how) = VerdictStore::open(&path, 7, 4, None).unwrap();
        assert_eq!(
            how,
            StoreOpen::Evicted {
                prior_config: 7,
                prior_epoch: 3
            }
        );
        assert!(store.lookup(CANON).is_none());
        assert!(evicted_path(&path).exists());
        drop(store);
        // Different config, same epoch: evicted again.
        let (store, how) = VerdictStore::open(&path, 8, 4, None).unwrap();
        assert!(matches!(
            how,
            StoreOpen::Evicted {
                prior_config: 7,
                ..
            }
        ));
        assert!(store.is_empty());
    }

    #[test]
    fn torn_tail_is_truncated_not_trusted() {
        let path = tmp("torn.jsonl");
        {
            let (mut store, _) = VerdictStore::open(&path, 9, 0, None).unwrap();
            store
                .insert(CANON, OutcomeKind::Valid, "valid", 1, "")
                .unwrap();
        }
        // Simulate a torn write: half a record, no newline.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"hash\":\"0011223344556677\",\"canon\":\"%v0 = ")
            .unwrap();
        drop(f);
        let (store, how) = VerdictStore::open(&path, 9, 0, None).unwrap();
        assert_eq!(
            how,
            StoreOpen::Loaded {
                records: 1,
                discarded: 1
            }
        );
        assert_eq!(store.lookup(CANON).unwrap().verdict, OutcomeKind::Valid);
        // The file itself was repaired: a re-open discards nothing.
        drop(store);
        let (_, how) = VerdictStore::open(&path, 9, 0, None).unwrap();
        assert_eq!(
            how,
            StoreOpen::Loaded {
                records: 1,
                discarded: 0
            }
        );
    }

    #[test]
    fn collision_buckets_compare_text() {
        let path = tmp("collision.jsonl");
        let (mut store, _) = VerdictStore::open(&path, 1, 0, None).unwrap();
        store
            .insert(CANON, OutcomeKind::Valid, "valid", 1, "")
            .unwrap();
        // Forge an index collision: same bucket, different canonical text.
        let other = "%v1 = sub %v0, C1\n=>\n%v1 = %v0";
        let h = fnv1a64(CANON.as_bytes());
        store
            .index
            .insert(fnv1a64(other.as_bytes()), store.index[&h]);
        assert!(store.lookup(other).is_none(), "collision must miss");
        assert!(store.lookup(CANON).is_some());
    }
}
