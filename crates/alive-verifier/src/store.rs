//! The persistent content-addressed verdict store.
//!
//! `alive serve` must answer "has this optimization ever been verified
//! under these settings?" in microseconds. The store is that answer's
//! home: an append-only JSONL file mapping the **canonical content hash**
//! of a transform (see [`alive_ir::canon`]) to its verdict, reusing the
//! journal's CRC-sealed line discipline ([`crate::journal`]) so a torn
//! tail after `kill -9` is truncated, never trusted.
//!
//! # Record format (`alive-store/v1`)
//!
//! Line 1 is a sealed header binding the store to a config fingerprint
//! and an eviction epoch; every other line is one verdict record:
//!
//! ```text
//! {"store":"alive-store/v1","config":"<16 hex>","epoch":0,
//!  "desc":"widths=4,8,...","crc":"<16 hex>"}
//! {"hash":"<16 hex>","canon":"%v1 = add %v0, C1\n=>\n%v1 = %v0",
//!  "verdict":"valid","reason":"...","wall_ms":1412,"cert":"",
//!  "crc":"<16 hex>"}
//! ```
//!
//! (wrapped for display; each record is a single `\n`-terminated line).
//!
//! * `hash` is the FNV-1a 64 of the canonical text. A 64-bit hash can
//!   collide, so the canonical text itself is stored and **compared on
//!   every lookup** — the hash only buckets, the text decides.
//! * `cert` is a certificate reference (a path or slug), empty when the
//!   verdict carries none.
//! * When one hash appears in several records the **last wins**, so
//!   re-verification under an escalated budget (say `unknown` → `valid`)
//!   supersedes the stale row without rewriting the file.
//!
//! # Epoch-based eviction
//!
//! The header binds every record to `(config fingerprint, epoch)`. Opening
//! a store whose header disagrees with the caller's fingerprint or epoch
//! **evicts** it: the old file is rotated to `<path>.evicted.<epoch>`
//! (the *prior* store's epoch, so each eviction generation keeps its own
//! file) and a fresh store is started. Bumping `--epoch` is therefore the
//! operator's "the toolchain changed, trust nothing" lever, and a config
//! change can never replay verdicts computed under different verifier
//! semantics.
//!
//! # Compaction
//!
//! Last-record-wins means a superseding re-verification (`unknown` →
//! `valid` under an escalated budget) appends rather than rewrites, so a
//! long-lived store accumulates dead records and pays replay cost for
//! them on every open. [`VerdictStore::compact`] (in-process) and
//! [`compact_store`] (offline, `alive compact`) rewrite the live records
//! — header preserved byte for byte — to a temp file that atomically
//! replaces the store via the [`crate::durable`] rename discipline
//! (tmp + fsync + rename + parent-directory fsync). The daemon compacts
//! automatically on open when [`needs_compaction`] says the dead-record
//! ratio crossed its threshold.
//!
//! # Single writer, crash-only recovery
//!
//! A store is guarded by a `<path>.lock` file naming the owning pid
//! ([`StoreLock`]); a second daemon pointed at the same store gets a clean
//! refusal instead of interleaved appends, and a lock left by a crashed
//! process is reclaimed after a liveness probe. Damage is handled in two
//! tiers: a torn **tail** (the `kill -9` case) is truncated away on open,
//! but a corrupt line with intact records *after* it means something other
//! than an append crash happened, so [`VerdictStore::open`] refuses rather
//! than silently discarding the good suffix — [`scrub_store`] is the
//! offline salvage tool, CRC-validating every line independently,
//! quarantining the bad ones to `<path>.quarantine`, and rewriting the
//! survivors into a fresh sealed store.

use crate::driver::{json_escape, OutcomeKind};
use crate::durable::{self, DurableFile};
use crate::journal::{fnv1a64, seal, unseal, Scanner};
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// One cached verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreRecord {
    /// FNV-1a 64 of `canon`, 16 lower-case hex digits.
    pub hash: String,
    /// The canonical printed text of the transform (the real key).
    pub canon: String,
    /// Cached classification.
    pub verdict: OutcomeKind,
    /// Verdict detail (counterexample text, error message, ...).
    pub reason: String,
    /// Wall milliseconds the original verification took.
    pub wall_ms: u64,
    /// Certificate reference (path or slug); empty when none.
    pub cert: String,
}

impl StoreRecord {
    fn body(&self) -> String {
        format!(
            "{{\"hash\":\"{}\",\"canon\":\"{}\",\"verdict\":\"{}\",\"reason\":\"{}\",\
             \"wall_ms\":{},\"cert\":\"{}\"",
            self.hash,
            json_escape(&self.canon),
            self.verdict.as_str(),
            json_escape(&self.reason),
            self.wall_ms,
            json_escape(&self.cert),
        )
    }

    /// Serializes one full, CRC-sealed store line (without the newline).
    pub fn to_line(&self) -> String {
        seal(self.body())
    }

    /// Parses one store line (CRC check included).
    pub fn parse_line(line: &str) -> Option<StoreRecord> {
        let body = unseal(line)?;
        let mut sc = Scanner::new(body);
        sc.lit("{\"hash\":\"")?;
        let hash = sc.hex16()?;
        sc.lit("\",\"canon\":\"")?;
        let canon = sc.string_body()?;
        sc.lit("\",\"verdict\":\"")?;
        let verdict = OutcomeKind::from_label(&sc.string_body()?)?;
        sc.lit("\",\"reason\":\"")?;
        let reason = sc.string_body()?;
        sc.lit("\",\"wall_ms\":")?;
        let wall_ms = sc.number()?;
        sc.lit(",\"cert\":\"")?;
        let cert = sc.string_body()?;
        sc.lit("\"")?;
        if !sc.at_end() {
            return None;
        }
        Some(StoreRecord {
            hash,
            canon,
            verdict,
            reason,
            wall_ms,
            cert,
        })
    }
}

/// What [`VerdictStore::open`] found on disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreOpen {
    /// No store existed; a fresh one was created.
    Created,
    /// A matching store was loaded.
    Loaded {
        /// Distinct cached verdicts available after dedup.
        records: usize,
        /// Torn or corrupt lines discarded from the tail.
        discarded: usize,
    },
    /// The store's header disagreed with the caller's `(config, epoch)`;
    /// the old file was rotated to `<path>.evicted.<prior_epoch>` and a
    /// fresh store started.
    Evicted {
        /// Fingerprint the old store was bound to.
        prior_config: u64,
        /// Epoch the old store was bound to.
        prior_epoch: u64,
    },
}

/// An open verdict store: in-memory index over an append-only, CRC-sealed
/// JSONL file. Every [`VerdictStore::insert`] is fsync'd before returning.
#[derive(Debug)]
pub struct VerdictStore {
    file: DurableFile,
    path: PathBuf,
    fingerprint: u64,
    epoch: u64,
    /// hash (as u64) → index into `records`; last inserted wins.
    index: HashMap<u64, usize>,
    records: Vec<StoreRecord>,
    /// Bytes of known-good sealed lines; a failed append truncates back
    /// to this so the file never holds a half-record while we own it.
    good_bytes: u64,
    /// Held for the store's lifetime; dropping releases `<path>.lock`.
    _lock: StoreLock,
}

/// Path an evicted store is rotated to: `.evicted.<epoch>` is *appended*
/// (`store.jsonl` evicted at epoch 3 → `store.jsonl.evicted.3`), never
/// substituted for the existing extension, so the original file name
/// stays recognizable. The generation suffix is the *evicted* store's
/// epoch: bumping `--epoch` twice rotates to two distinct files instead
/// of the second eviction destroying the first.
pub fn evicted_path(path: &Path, epoch: u64) -> std::path::PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(".evicted.{epoch}"));
    std::path::PathBuf::from(name)
}

fn suffixed(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(suffix);
    PathBuf::from(name)
}

/// Path of the single-writer lock guarding a store: `<store>.lock`.
pub fn lock_path(path: &Path) -> PathBuf {
    suffixed(path, ".lock")
}

/// Path corrupt lines are quarantined to by [`scrub_store`]:
/// `<store>.quarantine`.
pub fn quarantine_path(path: &Path) -> PathBuf {
    suffixed(path, ".quarantine")
}

#[cfg(unix)]
fn process_alive(pid: u32) -> bool {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    // Signal 0 performs the permission/existence check without delivering
    // anything. An EPERM failure reads as "dead" here; stores are per-user
    // files, so a pid we cannot even probe is not a daemon we could race.
    pid != 0 && unsafe { kill(pid as i32, 0) } == 0
}

#[cfg(not(unix))]
fn process_alive(_pid: u32) -> bool {
    // No portable liveness probe: never reclaim, so a crash leaves a lock
    // the operator must remove by hand. Conservative beats interleaved
    // appends from two writers.
    true
}

/// A held single-writer lock on a store. Dropping it removes the lock
/// file; a file left behind by `kill -9` names a dead pid and is
/// reclaimed by the next [`StoreLock::acquire`].
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    /// Takes the single-writer lock for the store at `store`.
    ///
    /// # Errors
    ///
    /// Refuses with a `"locked by live process"` error when the lock file
    /// names a pid that is still running — the "two daemons, one store"
    /// footgun. A lock naming a dead pid (a crashed daemon) is reclaimed.
    pub fn acquire(store: &Path) -> io::Result<StoreLock> {
        let path = lock_path(store);
        // create_new is the atomic claim; the reclaim path removes a stale
        // file and retries, bounded so two processes reclaiming in
        // lockstep degenerate into an error instead of a livelock.
        for _ in 0..16 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    // A lock body we could not write (or sync) may read as
                    // an empty/garbage pid to the next claimant and be
                    // reclaimed under us — surrender the claim instead.
                    if let Err(e) =
                        writeln!(f, "{}", std::process::id()).and_then(|()| f.sync_data())
                    {
                        drop(f);
                        let _ = std::fs::remove_file(&path);
                        return Err(e);
                    }
                    return Ok(StoreLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if process_alive(pid) => {
                            return Err(io::Error::other(format!(
                                "{} is locked by live process {pid}; one writer per \
                                 store — stop that daemon, or remove {} if the pid is \
                                 not an alive daemon",
                                store.display(),
                                path.display()
                            )));
                        }
                        // Dead pid or unreadable/partial lock file: stale.
                        _ => {
                            let _ = std::fs::remove_file(&path);
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::other(format!(
            "{}: lock contended, giving up",
            store.display()
        )))
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl VerdictStore {
    /// Opens (or creates) the store at `path`, bound to the given config
    /// fingerprint and eviction epoch, taking the single-writer lock for
    /// the store's lifetime. A header mismatch evicts the old store (see
    /// module docs); a torn tail is truncated away.
    ///
    /// # Errors
    ///
    /// Refuses when another live process holds the store's lock, and when
    /// a corrupt line is followed by intact records — the good suffix
    /// proves the damage was not a crashed append, so nothing is silently
    /// discarded; run `alive scrub` to salvage.
    pub fn open(
        path: &Path,
        fingerprint: u64,
        epoch: u64,
        description: Option<&str>,
    ) -> std::io::Result<(VerdictStore, StoreOpen)> {
        let lock = StoreLock::acquire(path)?;
        if !path.exists() {
            let store = VerdictStore::create(path, fingerprint, epoch, description, lock)?;
            return Ok((store, StoreOpen::Created));
        }
        let text = std::fs::read_to_string(path)?;
        let mut lines = text.split('\n');
        let header = lines.next().and_then(parse_store_header);
        match header {
            Some((fp, ep)) if fp == fingerprint && ep == epoch => {}
            other => {
                // Wrong config, wrong epoch, or unreadable header: never
                // serve these verdicts. Keep the old file around for
                // post-mortems rather than deleting data — under its own
                // generation suffix, so repeated evictions cannot destroy
                // each other's rotated files.
                let (prior_config, prior_epoch) = other.unwrap_or((0, 0));
                durable::rename(path, &evicted_path(path, prior_epoch))?;
                let store = VerdictStore::create(path, fingerprint, epoch, description, lock)?;
                return Ok((
                    store,
                    StoreOpen::Evicted {
                        prior_config,
                        prior_epoch,
                    },
                ));
            }
        }
        let loaded = load_records(path, &text)?;
        let mut file = DurableFile::open_append(path)?;
        if (loaded.good_bytes as u64) < file.file().metadata()?.len() {
            file.truncate(loaded.good_bytes as u64)?;
        }
        let index = build_index(&loaded.records);
        let distinct = index.len();
        Ok((
            VerdictStore {
                file,
                path: path.to_path_buf(),
                fingerprint,
                epoch,
                index,
                records: loaded.records,
                good_bytes: loaded.good_bytes as u64,
                _lock: lock,
            },
            StoreOpen::Loaded {
                records: distinct,
                discarded: loaded.discarded,
            },
        ))
    }

    fn create(
        path: &Path,
        fingerprint: u64,
        epoch: u64,
        description: Option<&str>,
        lock: StoreLock,
    ) -> std::io::Result<VerdictStore> {
        let mut file = durable::create(path)?;
        let mut body = format!(
            "{{\"store\":\"alive-store/v1\",\"config\":\"{fingerprint:016x}\",\"epoch\":{epoch}"
        );
        if let Some(desc) = description {
            body.push_str(&format!(",\"desc\":\"{}\"", json_escape(desc)));
        }
        let header = seal(body);
        durable::append(&mut file, format!("{header}\n").as_bytes())?;
        durable::sync(&file)?;
        // The header is on disk but the file *name* is not durable until
        // its directory entry is.
        durable::fsync_parent(path)?;
        let good_bytes = header.len() as u64 + 1;
        // Re-open in append mode so later inserts cannot clobber the header.
        drop(file);
        let file = DurableFile::open_append(path)?;
        Ok(VerdictStore {
            file,
            path: path.to_path_buf(),
            fingerprint,
            epoch,
            index: HashMap::new(),
            records: Vec::new(),
            good_bytes,
            _lock: lock,
        })
    }

    /// The store's path (for messages).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The config fingerprint this store is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The eviction epoch this store is bound to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of distinct cached verdicts.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Looks up the cached verdict for a transform's canonical text.
    /// Returns `None` on a hash-bucket hit whose stored canonical text
    /// differs (a 64-bit collision): colliding entries must re-verify.
    pub fn lookup(&self, canon: &str) -> Option<&StoreRecord> {
        let h = fnv1a64(canon.as_bytes());
        let rec = &self.records[*self.index.get(&h)?];
        (rec.canon == canon).then_some(rec)
    }

    /// Inserts (or supersedes) the verdict for a canonical text, fsync'ing
    /// the record before returning.
    ///
    /// # Errors
    ///
    /// A failed append (disk full, injected fault) leaves the file
    /// truncated back to its last good record when possible; when even
    /// that repair fails the store is poisoned and every later insert
    /// returns an error immediately. Either way the in-memory index is
    /// untouched, so lookups keep answering — the verdict just is not
    /// durable.
    pub fn insert(
        &mut self,
        canon: &str,
        verdict: OutcomeKind,
        reason: &str,
        wall_ms: u64,
        cert: &str,
    ) -> std::io::Result<()> {
        if self.file.poisoned() {
            return Err(io::Error::other(format!(
                "{}: store poisoned by an earlier failed append or sync; restart to recover",
                self.path.display()
            )));
        }
        let h = fnv1a64(canon.as_bytes());
        let rec = StoreRecord {
            hash: format!("{h:016x}"),
            canon: canon.to_string(),
            verdict,
            reason: reason.to_string(),
            wall_ms,
            cert: cert.to_string(),
        };
        let line = rec.to_line();
        if let Err(e) = self.append_line(&line) {
            // Roll the file back to the last good record so the tail never
            // holds a half-written line while this process owns the store.
            // A failed repair (or repair sync) poisons the handle — per
            // fsyncgate, nothing after a failed sync can be trusted.
            if self.file.truncate(self.good_bytes).is_err() {
                self.file.poison();
            }
            return Err(e);
        }
        self.good_bytes += line.len() as u64 + 1;
        self.index.insert(h, self.records.len());
        self.records.push(rec);
        Ok(())
    }

    fn append_line(&mut self, line: &str) -> std::io::Result<()> {
        #[cfg(feature = "fault-injection")]
        match alive_sat::fault::fire(alive_sat::fault::FaultSite::Store) {
            Some(alive_sat::fault::FaultKind::IoError) => {
                return Err(io::Error::other("injected fault: store append io-error"));
            }
            Some(alive_sat::fault::FaultKind::TornWrite) => {
                // Land half the sealed line, then fail — the same on-disk
                // state a `kill -9` mid-append produces. The caller's
                // truncate-back repair must erase it. The half-write may
                // itself fail (an even shorter tear); the sync pushes the
                // torn bytes to disk so recovery sees them, and a *real*
                // sync failure here poisons the handle via the seam.
                let _ = self.file.append(&line.as_bytes()[..line.len() / 2]);
                let _ = self.file.sync();
                return Err(io::Error::other("injected fault: store append torn"));
            }
            _ => {}
        }
        self.file.append(format!("{line}\n").as_bytes())?;
        self.file.sync()
    }

    /// Records replayed from disk at open plus records appended since —
    /// including dead (superseded) ones. `replayed() - len()` is the
    /// compaction payoff.
    pub fn replayed(&self) -> usize {
        self.records.len()
    }

    /// The live records — the latest record per canonical text, in
    /// append order. Exactly what [`VerdictStore::compact`] keeps.
    pub fn live_records(&self) -> impl Iterator<Item = &StoreRecord> + '_ {
        let mut live: Vec<usize> = self.index.values().copied().collect();
        live.sort_unstable();
        live.into_iter().map(|i| &self.records[i])
    }

    /// Rewrites the store down to its live records, in place.
    ///
    /// The header line is preserved byte for byte (fingerprint, epoch,
    /// and description all survive), the live records keep their append
    /// order, and the swap is the durable tmp + fsync + rename +
    /// parent-directory-fsync sequence — a crash at any point leaves
    /// either the old complete store or the new complete store, never a
    /// mix.
    ///
    /// # Errors
    ///
    /// Refuses when the handle is poisoned. A failure before the rename
    /// leaves the store untouched and usable; a failure *after* (the
    /// reopen of the freshly renamed file) poisons the handle, because
    /// the old append handle now points at an unlinked inode.
    pub fn compact(&mut self) -> io::Result<CompactReport> {
        if self.file.poisoned() {
            return Err(io::Error::other(format!(
                "{}: store poisoned; restart before compacting",
                self.path.display()
            )));
        }
        let bytes_before = self.good_bytes;
        let text = std::fs::read_to_string(&self.path)?;
        let header_line = text.split('\n').next().unwrap_or("").to_string();
        if parse_store_header(&header_line).is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: store header unreadable", self.path.display()),
            ));
        }
        let live: Vec<StoreRecord> = self.live_records().cloned().collect();
        let mut buf = String::with_capacity(self.good_bytes as usize);
        buf.push_str(&header_line);
        buf.push('\n');
        for rec in &live {
            buf.push_str(&rec.to_line());
            buf.push('\n');
        }
        let tmp = suffixed(&self.path, ".compact-tmp");
        {
            let mut f = durable::create(&tmp)?;
            durable::append(&mut f, buf.as_bytes())?;
            durable::sync(&f)?;
        }
        durable::rename(&tmp, &self.path)?;
        // The old append handle points at the pre-compaction inode; a
        // write through it would vanish. Reopen or refuse.
        match DurableFile::open_append(&self.path) {
            Ok(f) => self.file = f,
            Err(e) => {
                self.file.poison();
                return Err(e);
            }
        }
        let dropped = self.records.len() - live.len();
        self.records = live;
        self.index = build_index(&self.records);
        self.good_bytes = buf.len() as u64;
        Ok(CompactReport {
            replayed: self.records.len() + dropped,
            live: self.records.len(),
            dropped,
            bytes_before,
            bytes_after: self.good_bytes,
            fingerprint: self.fingerprint,
            epoch: self.epoch,
        })
    }
}

/// Parses the sealed store header, returning `(config, epoch)`. The
/// description field, when present, is tolerated and ignored here — the
/// fingerprint is what gates reuse.
fn parse_store_header(line: &str) -> Option<(u64, u64)> {
    let body = unseal(line)?;
    let mut sc = Scanner::new(body);
    sc.lit("{\"store\":\"alive-store/v1\",\"config\":\"")?;
    let fp = u64::from_str_radix(&sc.hex16()?, 16).ok()?;
    sc.lit("\",\"epoch\":")?;
    let epoch = sc.number()?;
    if sc.try_lit(",\"desc\":\"") {
        sc.string_body()?;
        sc.lit("\"")?;
    }
    if !sc.at_end() {
        return None;
    }
    Some((fp, epoch))
}

/// Record lines parsed with [`VerdictStore::open`]'s crash-signature
/// semantics: tail damage dropped, mid-file damage refused.
struct LoadedRecords {
    records: Vec<StoreRecord>,
    /// Bytes of the header plus every intact record line.
    good_bytes: usize,
    /// Torn or corrupt lines discarded from the tail.
    discarded: usize,
}

/// Parses the record region of a store file. Only *tail* damage — a torn
/// final line, or a complete final line failing its CRC — is self-healed
/// by discarding, because that is the signature of a crashed append. A
/// bad line with good records after it is a different disease (bit rot,
/// manual edits, an interleaved writer) and discarding the good suffix
/// would throw away verdicts, so refuse instead.
fn load_records(path: &Path, text: &str) -> io::Result<LoadedRecords> {
    let mut lines = text.split('\n');
    let _header = lines.next();
    let mut records = Vec::new();
    let mut good_bytes = text.find('\n').map_or(text.len(), |p| p + 1);
    let mut discarded = 0usize;
    let mut rest: Vec<&str> = lines.collect();
    let torn_tail = match rest.last() {
        Some(&"") => {
            rest.pop();
            false
        }
        Some(_) => true,
        None => false,
    };
    let total = rest.len();
    for (i, line) in rest.iter().enumerate() {
        let last = i + 1 == total;
        if last && torn_tail {
            discarded += 1;
            break;
        }
        match StoreRecord::parse_line(line) {
            Some(rec) => {
                good_bytes += line.len() + 1;
                records.push(rec);
            }
            None if last => {
                discarded += 1;
                break;
            }
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: corrupt record at line {} with {} intact-looking line(s) \
                         after it; refusing to discard them — run `alive scrub {}` to \
                         salvage the store",
                        path.display(),
                        i + 2,
                        total - i - 1,
                        path.display()
                    ),
                ));
            }
        }
    }
    Ok(LoadedRecords {
        records,
        good_bytes,
        discarded,
    })
}

fn build_index(records: &[StoreRecord]) -> HashMap<u64, usize> {
    let mut index = HashMap::with_capacity(records.len());
    for (i, rec) in records.iter().enumerate() {
        if let Ok(h) = u64::from_str_radix(&rec.hash, 16) {
            index.insert(h, i);
        }
    }
    index
}

/// What [`VerdictStore::compact`] / [`compact_store`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactReport {
    /// Records examined (live plus dead).
    pub replayed: usize,
    /// Live records kept (latest per canonical text).
    pub live: usize,
    /// Dead (superseded) records dropped.
    pub dropped: usize,
    /// Record-region bytes before the rewrite.
    pub bytes_before: u64,
    /// Record-region bytes after (equals before when nothing was dead).
    pub bytes_after: u64,
    /// Config fingerprint from the preserved header.
    pub fingerprint: u64,
    /// Eviction epoch from the preserved header.
    pub epoch: u64,
}

/// Whether a store's dead-record ratio justifies an automatic compaction
/// on daemon open: at least half the replayed records are dead, and the
/// rewrite would drop more than a token amount. Conservative on purpose —
/// a store that was never superseded never pays a rewrite.
pub fn needs_compaction(replayed: usize, live: usize) -> bool {
    replayed >= live.saturating_mul(2) && replayed - live >= 2
}

/// Compacts the store at `path` down to its live records, offline
/// (`alive compact`). Takes the single-writer lock; the header is
/// preserved byte for byte, and the swap is the durable tmp + fsync +
/// rename + parent-directory-fsync sequence. Tail damage is dropped
/// exactly as [`VerdictStore::open`] would drop it.
///
/// # Errors
///
/// Refuses when a live process holds the store's lock, when the header is
/// unreadable (no trustworthy config binding), and when a corrupt line is
/// followed by intact records — run `alive scrub` first.
pub fn compact_store(path: &Path) -> io::Result<CompactReport> {
    let _lock = StoreLock::acquire(path)?;
    let text = std::fs::read_to_string(path)?;
    let header_line = text.split('\n').next().unwrap_or("");
    let Some((fingerprint, epoch)) = parse_store_header(header_line) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: store header is unreadable, so its records have no trustworthy \
                 config binding; delete the file or let the daemon evict it",
                path.display()
            ),
        ));
    };
    let loaded = load_records(path, &text)?;
    let index = build_index(&loaded.records);
    let mut live: Vec<usize> = index.values().copied().collect();
    live.sort_unstable();
    let report = |bytes_after: u64| CompactReport {
        replayed: loaded.records.len(),
        live: live.len(),
        dropped: loaded.records.len() - live.len(),
        bytes_before: loaded.good_bytes as u64,
        bytes_after,
        fingerprint,
        epoch,
    };
    if live.len() == loaded.records.len() && loaded.discarded == 0 {
        // Nothing dead and no tail to trim: leave the file untouched.
        return Ok(report(loaded.good_bytes as u64));
    }
    let mut buf = String::with_capacity(loaded.good_bytes);
    buf.push_str(header_line);
    buf.push('\n');
    for &i in &live {
        buf.push_str(&loaded.records[i].to_line());
        buf.push('\n');
    }
    let tmp = suffixed(path, ".compact-tmp");
    {
        let mut f = durable::create(&tmp)?;
        durable::append(&mut f, buf.as_bytes())?;
        durable::sync(&f)?;
    }
    durable::rename(&tmp, path)?;
    Ok(report(buf.len() as u64))
}

/// What [`scrub_store`] did, for the operator's report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScrubReport {
    /// Record lines examined (the header is not counted).
    pub examined: usize,
    /// Intact records rewritten into the fresh sealed store.
    pub salvaged: usize,
    /// Distinct canonical texts among the salvaged records.
    pub distinct: usize,
    /// Corrupt lines moved to `<store>.quarantine`.
    pub quarantined: usize,
    /// Where the corrupt lines went; `None` when nothing was quarantined
    /// (the store was already clean and was left untouched).
    pub quarantine: Option<PathBuf>,
    /// Config fingerprint from the preserved header.
    pub fingerprint: u64,
    /// Eviction epoch from the preserved header.
    pub epoch: u64,
}

/// Salvages a corrupted verdict store in place.
///
/// Unlike [`VerdictStore::open`] — which only self-heals tail damage —
/// this validates every line's CRC *independently*, so one corrupt line
/// mid-file costs exactly that line. Intact records (and the original
/// header, byte for byte) are rewritten to a temp file that atomically
/// replaces the store; corrupt lines are appended to `<store>.quarantine`
/// under a `#`-prefixed report header, preserved for post-mortems rather
/// than discarded. A store with nothing wrong is left untouched.
///
/// # Errors
///
/// Refuses when a live process holds the store's lock, and when the
/// header itself is unreadable — records without a trustworthy
/// `(config, epoch)` binding must not be replayed, so that store can only
/// be deleted or left for the daemon's eviction path.
pub fn scrub_store(path: &Path) -> io::Result<ScrubReport> {
    let _lock = StoreLock::acquire(path)?;
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.split('\n');
    let header_line = lines.next().unwrap_or("");
    let Some((fingerprint, epoch)) = parse_store_header(header_line) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: store header is unreadable, so its records have no trustworthy \
                 config binding; delete the file or let the daemon evict it",
                path.display()
            ),
        ));
    };
    let rest: Vec<&str> = lines.collect();
    let mut good: Vec<&str> = Vec::new();
    let mut bad: Vec<(usize, &str)> = Vec::new();
    let mut distinct: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let total = rest.len();
    for (i, line) in rest.iter().enumerate() {
        if line.is_empty() && i + 1 == total {
            // The final newline's empty remainder, not a record.
            continue;
        }
        match StoreRecord::parse_line(line) {
            Some(rec) => {
                distinct.insert(fnv1a64(rec.canon.as_bytes()));
                good.push(line);
            }
            // 1-based in the file, counting the header as line 1.
            None => bad.push((i + 2, line)),
        }
    }
    let examined = good.len() + bad.len();
    if bad.is_empty() {
        return Ok(ScrubReport {
            examined,
            salvaged: good.len(),
            distinct: distinct.len(),
            quarantined: 0,
            quarantine: None,
            fingerprint,
            epoch,
        });
    }
    // Quarantine first: until the rewrite lands, the damaged original is
    // still on disk, so a crash between these steps loses nothing.
    let qpath = quarantine_path(path);
    {
        let file = OpenOptions::new().create(true).append(true).open(&qpath)?;
        let mut q = DurableFile::from_file(file);
        let mut buf = format!(
            "# alive scrub: {} corrupt line(s) quarantined from {}\n",
            bad.len(),
            path.display()
        );
        for (lineno, line) in &bad {
            buf.push_str(&format!("# line {lineno}\n{line}\n"));
        }
        q.append(buf.as_bytes())?;
        q.sync()?;
    }
    // The quarantine may be a fresh file; persist its directory entry
    // before touching the store, or a crash could keep the rewrite while
    // forgetting the quarantined evidence.
    durable::fsync_parent(&qpath)?;
    let tmp = suffixed(path, ".scrub-tmp");
    {
        let mut f = durable::create(&tmp)?;
        let mut buf = format!("{header_line}\n");
        for line in &good {
            buf.push_str(&format!("{line}\n"));
        }
        durable::append(&mut f, buf.as_bytes())?;
        durable::sync(&f)?;
    }
    durable::rename(&tmp, path)?;
    Ok(ScrubReport {
        examined,
        salvaged: good.len(),
        distinct: distinct.len(),
        quarantined: bad.len(),
        quarantine: Some(qpath),
        fingerprint,
        epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("alive-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        // Sweep the store plus every sibling artifact (lock, quarantine,
        // and all generation-suffixed .evicted.<epoch> files).
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            if entry.file_name().to_string_lossy().starts_with(name) {
                std::fs::remove_file(entry.path()).ok();
            }
        }
        path
    }

    const CANON: &str = "%v1 = add %v0, C1\n=>\n%v1 = %v0";

    #[test]
    fn record_round_trips() {
        let rec = StoreRecord {
            hash: format!("{:016x}", fnv1a64(CANON.as_bytes())),
            canon: CANON.to_string(),
            verdict: OutcomeKind::Invalid,
            reason: "counterexample:\n%x = 1".to_string(),
            wall_ms: 1412,
            cert: "certs/add-identity.cert".to_string(),
        };
        let line = rec.to_line();
        assert_eq!(StoreRecord::parse_line(&line), Some(rec));
        // Any truncation fails the CRC or the strict parse.
        for cut in 1..line.len() {
            assert!(StoreRecord::parse_line(&line[..cut]).is_none());
        }
    }

    #[test]
    fn store_persists_across_reopen() {
        let path = tmp("persist.jsonl");
        {
            let (mut store, how) = VerdictStore::open(&path, 42, 0, Some("widths=4,")).unwrap();
            assert_eq!(how, StoreOpen::Created);
            assert!(store.lookup(CANON).is_none());
            store
                .insert(CANON, OutcomeKind::Valid, "valid", 12, "")
                .unwrap();
            assert_eq!(store.lookup(CANON).unwrap().verdict, OutcomeKind::Valid);
        }
        let (store, how) = VerdictStore::open(&path, 42, 0, Some("widths=4,")).unwrap();
        assert_eq!(
            how,
            StoreOpen::Loaded {
                records: 1,
                discarded: 0
            }
        );
        let rec = store.lookup(CANON).unwrap();
        assert_eq!(rec.verdict, OutcomeKind::Valid);
        assert_eq!(rec.wall_ms, 12);
    }

    #[test]
    fn last_record_wins() {
        let path = tmp("supersede.jsonl");
        let (mut store, _) = VerdictStore::open(&path, 1, 0, None).unwrap();
        store
            .insert(CANON, OutcomeKind::Unknown, "budget", 5, "")
            .unwrap();
        store
            .insert(CANON, OutcomeKind::Valid, "valid", 90, "")
            .unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.lookup(CANON).unwrap().verdict, OutcomeKind::Valid);
        // And after a reload.
        drop(store);
        let (store, _) = VerdictStore::open(&path, 1, 0, None).unwrap();
        assert_eq!(store.lookup(CANON).unwrap().verdict, OutcomeKind::Valid);
    }

    #[test]
    fn config_or_epoch_mismatch_evicts() {
        let path = tmp("evict.jsonl");
        {
            let (mut store, _) = VerdictStore::open(&path, 7, 3, None).unwrap();
            store
                .insert(CANON, OutcomeKind::Valid, "valid", 1, "")
                .unwrap();
        }
        // Same config, bumped epoch: evicted under the prior epoch's
        // generation suffix.
        let (store, how) = VerdictStore::open(&path, 7, 4, None).unwrap();
        assert_eq!(
            how,
            StoreOpen::Evicted {
                prior_config: 7,
                prior_epoch: 3
            }
        );
        assert!(store.lookup(CANON).is_none());
        assert!(evicted_path(&path, 3).exists());
        drop(store);
        // Different config, same epoch: evicted again — to a *different*
        // generation file, leaving the first eviction intact.
        let (store, how) = VerdictStore::open(&path, 8, 4, None).unwrap();
        assert!(matches!(
            how,
            StoreOpen::Evicted {
                prior_config: 7,
                ..
            }
        ));
        assert!(store.is_empty());
        assert!(evicted_path(&path, 4).exists());
        assert!(
            evicted_path(&path, 3).exists(),
            "a second eviction must not clobber the first generation"
        );
        // The first generation still holds the original record.
        let first = std::fs::read_to_string(evicted_path(&path, 3)).unwrap();
        assert!(first.contains("\"epoch\":3"), "{first}");
    }

    #[test]
    fn torn_tail_is_truncated_not_trusted() {
        let path = tmp("torn.jsonl");
        {
            let (mut store, _) = VerdictStore::open(&path, 9, 0, None).unwrap();
            store
                .insert(CANON, OutcomeKind::Valid, "valid", 1, "")
                .unwrap();
        }
        // Simulate a torn write: half a record, no newline.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"hash\":\"0011223344556677\",\"canon\":\"%v0 = ")
            .unwrap();
        drop(f);
        let (store, how) = VerdictStore::open(&path, 9, 0, None).unwrap();
        assert_eq!(
            how,
            StoreOpen::Loaded {
                records: 1,
                discarded: 1
            }
        );
        assert_eq!(store.lookup(CANON).unwrap().verdict, OutcomeKind::Valid);
        // The file itself was repaired: a re-open discards nothing.
        drop(store);
        let (_, how) = VerdictStore::open(&path, 9, 0, None).unwrap();
        assert_eq!(
            how,
            StoreOpen::Loaded {
                records: 1,
                discarded: 0
            }
        );
    }

    #[test]
    fn second_writer_is_refused_and_crashed_lock_is_reclaimed() {
        let path = tmp("locked.jsonl");
        let (store, _) = VerdictStore::open(&path, 1, 0, None).unwrap();
        // Same store, second open while the first is alive: refused.
        let err = VerdictStore::open(&path, 1, 0, None).unwrap_err();
        assert!(err.to_string().contains("locked by live process"), "{err}");
        drop(store);
        // Clean drop releases the lock.
        assert!(!lock_path(&path).exists());
        // A lock left by a crashed process (here: a pid that cannot be
        // alive, and an unreadable lock body) is reclaimed, not fatal.
        std::fs::write(lock_path(&path), "999999999\n").unwrap();
        let (store, _) = VerdictStore::open(&path, 1, 0, None).unwrap();
        drop(store);
        std::fs::write(lock_path(&path), "not a pid").unwrap();
        VerdictStore::open(&path, 1, 0, None).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_refused_not_discarded() {
        let path = tmp("midfile.jsonl");
        let other = "%v1 = or %v0, 0\n=>\n%v1 = %v0";
        {
            let (mut store, _) = VerdictStore::open(&path, 5, 0, None).unwrap();
            store
                .insert(CANON, OutcomeKind::Valid, "valid", 1, "")
                .unwrap();
            store
                .insert(other, OutcomeKind::Valid, "valid", 2, "")
                .unwrap();
        }
        // Flip a byte inside the *first* record, leaving an intact record
        // after it: open must refuse, pointing at scrub, and must not
        // truncate anything.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.split('\n').collect();
        let corrupted = format!(
            "{}\n{}\n{}\n",
            lines[0],
            lines[1].replace("valid", "vALid"),
            lines[2]
        );
        std::fs::write(&path, &corrupted).unwrap();
        let err = VerdictStore::open(&path, 5, 0, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("alive scrub"), "{err}");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), corrupted);
        // And the refusal released the lock for the scrub that follows.
        assert!(!lock_path(&path).exists());
    }

    #[test]
    fn scrub_salvages_good_lines_and_quarantines_bad_ones() {
        let path = tmp("scrub.jsonl");
        let other = "%v1 = or %v0, 0\n=>\n%v1 = %v0";
        {
            let (mut store, _) = VerdictStore::open(&path, 5, 2, None).unwrap();
            store
                .insert(CANON, OutcomeKind::Valid, "valid", 1, "")
                .unwrap();
            store
                .insert(other, OutcomeKind::Invalid, "cex", 2, "")
                .unwrap();
        }
        // Corrupt the middle record and tear the tail.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.split('\n').collect();
        let corrupted = format!(
            "{}\n{}\n{}\n{{\"hash\":\"00",
            lines[0],
            lines[1].replace("crc", "cRc"),
            lines[2]
        );
        std::fs::write(&path, &corrupted).unwrap();
        let report = scrub_store(&path).unwrap();
        assert_eq!(report.examined, 3);
        assert_eq!(report.salvaged, 1);
        assert_eq!(report.distinct, 1);
        assert_eq!(report.quarantined, 2);
        assert_eq!(report.fingerprint, 5);
        assert_eq!(report.epoch, 2);
        let qpath = report.quarantine.unwrap();
        let quarantine = std::fs::read_to_string(&qpath).unwrap();
        assert!(quarantine.contains("cRc"), "bad line preserved verbatim");
        assert!(quarantine.contains("{\"hash\":\"00"), "torn tail preserved");
        // The scrubbed store loads cleanly and still serves the survivor.
        let (store, how) = VerdictStore::open(&path, 5, 2, None).unwrap();
        assert_eq!(
            how,
            StoreOpen::Loaded {
                records: 1,
                discarded: 0
            }
        );
        assert_eq!(store.lookup(other).unwrap().verdict, OutcomeKind::Invalid);
        assert!(store.lookup(CANON).is_none(), "corrupt record not replayed");
        // Scrubbing a clean store is a no-op with no quarantine.
        drop(store);
        let report = scrub_store(&path).unwrap();
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.quarantine, None);
        assert_eq!(report.salvaged, 1);
    }

    #[test]
    fn scrub_refuses_an_unreadable_header() {
        let path = tmp("scrub-header.jsonl");
        std::fs::write(&path, "not a store header\n").unwrap();
        let err = scrub_store(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("header"), "{err}");
    }

    fn canon_n(i: usize) -> String {
        format!("%v1 = add %v0, C{i}\n=>\n%v1 = %v0")
    }

    #[test]
    fn needs_compaction_thresholds() {
        // Fresh store, or one with no dead weight: never.
        assert!(!needs_compaction(0, 0));
        assert!(!needs_compaction(5, 5));
        // A single superseded record is not worth a rewrite.
        assert!(!needs_compaction(2, 1));
        assert!(!needs_compaction(3, 2));
        // Half-dead and at least two dead records: compact.
        assert!(needs_compaction(4, 2));
        assert!(needs_compaction(6, 2));
        assert!(needs_compaction(100, 10));
    }

    #[test]
    fn live_compaction_preserves_lookups_and_header() {
        let path = tmp("compact-live.jsonl");
        let (mut store, _) = VerdictStore::open(&path, 11, 2, Some("widths=4,")).unwrap();
        for i in 0..4 {
            store
                .insert(&canon_n(i), OutcomeKind::Unknown, "budget", 5, "")
                .unwrap();
        }
        // Supersede two of them (escalated re-verification decided them).
        store
            .insert(&canon_n(0), OutcomeKind::Valid, "valid", 90, "")
            .unwrap();
        store
            .insert(&canon_n(2), OutcomeKind::Invalid, "cex", 80, "")
            .unwrap();
        assert_eq!(store.replayed(), 6);
        assert_eq!(store.len(), 4);
        let before: Vec<StoreRecord> = (0..4)
            .map(|i| store.lookup(&canon_n(i)).unwrap().clone())
            .collect();
        let report = store.compact().unwrap();
        assert_eq!(report.replayed, 6);
        assert_eq!(report.live, 4);
        assert_eq!(report.dropped, 2);
        assert!(report.bytes_after < report.bytes_before);
        assert_eq!(report.fingerprint, 11);
        assert_eq!(report.epoch, 2);
        // Every lookup is byte-identical, and the store keeps serving
        // writes through the reopened handle.
        for (i, old) in before.iter().enumerate() {
            assert_eq!(store.lookup(&canon_n(i)).unwrap(), old);
        }
        store
            .insert(&canon_n(9), OutcomeKind::Valid, "valid", 7, "")
            .unwrap();
        drop(store);
        // Reopen with the same config: no eviction, nothing discarded,
        // nothing dead.
        let (store, how) = VerdictStore::open(&path, 11, 2, Some("widths=4,")).unwrap();
        assert_eq!(
            how,
            StoreOpen::Loaded {
                records: 5,
                discarded: 0
            }
        );
        assert_eq!(store.replayed(), 5);
        for (i, old) in before.iter().enumerate() {
            assert_eq!(store.lookup(&canon_n(i)).unwrap(), old);
        }
    }

    #[test]
    fn torn_tail_after_compaction_truncates_cleanly() {
        let path = tmp("compact-torn.jsonl");
        {
            let (mut store, _) = VerdictStore::open(&path, 3, 0, None).unwrap();
            store
                .insert(CANON, OutcomeKind::Unknown, "budget", 1, "")
                .unwrap();
            store
                .insert(CANON, OutcomeKind::Valid, "valid", 2, "")
                .unwrap();
            store.compact().unwrap();
        }
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"hash\":\"0011").unwrap();
        drop(f);
        let (store, how) = VerdictStore::open(&path, 3, 0, None).unwrap();
        assert_eq!(
            how,
            StoreOpen::Loaded {
                records: 1,
                discarded: 1
            }
        );
        assert_eq!(store.lookup(CANON).unwrap().verdict, OutcomeKind::Valid);
    }

    #[test]
    fn offline_compaction_matches_and_noops_when_clean() {
        let path = tmp("compact-offline.jsonl");
        {
            let (mut store, _) = VerdictStore::open(&path, 6, 1, None).unwrap();
            for i in 0..3 {
                store
                    .insert(&canon_n(i), OutcomeKind::Unknown, "budget", 1, "")
                    .unwrap();
                store
                    .insert(&canon_n(i), OutcomeKind::Valid, "valid", 2, "")
                    .unwrap();
            }
        }
        let report = compact_store(&path).unwrap();
        assert_eq!(report.replayed, 6);
        assert_eq!(report.live, 3);
        assert_eq!(report.dropped, 3);
        assert_eq!(report.fingerprint, 6);
        assert_eq!(report.epoch, 1);
        // Second pass: nothing dead, the file is left untouched.
        let clean = std::fs::read_to_string(&path).unwrap();
        let report = compact_store(&path).unwrap();
        assert_eq!(report.dropped, 0);
        assert_eq!(report.bytes_before, report.bytes_after);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), clean);
        let (store, how) = VerdictStore::open(&path, 6, 1, None).unwrap();
        assert_eq!(
            how,
            StoreOpen::Loaded {
                records: 3,
                discarded: 0
            }
        );
        for i in 0..3 {
            assert_eq!(
                store.lookup(&canon_n(i)).unwrap().verdict,
                OutcomeKind::Valid
            );
        }
    }

    #[test]
    fn thrice_superseded_store_compacts_near_fresh_size() {
        // Acceptance bound: after every record is superseded three times,
        // the compacted store is at most 1.5x a fresh store holding only
        // the live records.
        let live = tmp("compact-fresh.jsonl");
        {
            let (mut store, _) = VerdictStore::open(&live, 2, 0, None).unwrap();
            for i in 0..8 {
                store
                    .insert(&canon_n(i), OutcomeKind::Valid, "valid", 3, "")
                    .unwrap();
            }
        }
        let churned = tmp("compact-churned.jsonl");
        {
            let (mut store, _) = VerdictStore::open(&churned, 2, 0, None).unwrap();
            for round in 0..3 {
                for i in 0..8 {
                    let (verdict, reason) = if round == 2 {
                        (OutcomeKind::Valid, "valid")
                    } else {
                        (OutcomeKind::Unknown, "budget")
                    };
                    store.insert(&canon_n(i), verdict, reason, 3, "").unwrap();
                }
            }
            assert_eq!(store.replayed(), 24);
            assert!(needs_compaction(store.replayed(), store.len()));
            let report = store.compact().unwrap();
            assert_eq!(report.dropped, 16);
        }
        let fresh = std::fs::metadata(&live).unwrap().len();
        let compacted = std::fs::metadata(&churned).unwrap().len();
        assert!(
            compacted * 2 <= fresh * 3,
            "compacted store is {compacted} bytes, fresh equivalent {fresh}; \
             bound is 1.5x"
        );
        // And it serves the same verdicts as the fresh one.
        let (a, _) = VerdictStore::open(&live, 2, 0, None).unwrap();
        let (b, _) = VerdictStore::open(&churned, 2, 0, None).unwrap();
        for i in 0..8 {
            assert_eq!(
                a.lookup(&canon_n(i)).unwrap().verdict,
                b.lookup(&canon_n(i)).unwrap().verdict
            );
        }
    }

    #[test]
    fn collision_buckets_compare_text() {
        let path = tmp("collision.jsonl");
        let (mut store, _) = VerdictStore::open(&path, 1, 0, None).unwrap();
        store
            .insert(CANON, OutcomeKind::Valid, "valid", 1, "")
            .unwrap();
        // Forge an index collision: same bucket, different canonical text.
        let other = "%v1 = sub %v0, C1\n=>\n%v1 = %v0";
        let h = fnv1a64(CANON.as_bytes());
        store
            .index
            .insert(fnv1a64(other.as_bytes()), store.index[&h]);
        assert!(store.lookup(other).is_none(), "collision must miss");
        assert!(store.lookup(CANON).is_some());
    }
}
