//! Attribute inference (paper §3.4, Fig. 6).
//!
//! Alive infers where `nsw`/`nuw`/`exact` can be placed: on the source
//! side it seeks the *weakest precondition* (fewest required attributes),
//! on the target side the *strongest postcondition* (most attributes that
//! can be safely propagated).
//!
//! The paper enumerates models of a quantified SMT formula whose free
//! booleans guard each attribute's poison-free constraint, pruning with
//! the partial order between assignments. Attribute spaces are tiny (at
//! most a handful of flag positions per transformation), so this
//! implementation enumerates the same lattice of assignments explicitly —
//! each point checked with the full refinement pipeline — and exploits the
//! identical monotonicity: removing a source attribute or adding a target
//! attribute can only break correctness, never fix it.

use crate::verify::{verify, Verdict, VerifyConfig, VerifyError};
use alive_ir::ast::{Flag, Inst};
use alive_ir::Transform;

/// A flag position inside a transformation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlagPos {
    /// True for target template.
    pub in_target: bool,
    /// Statement index within the template.
    pub stmt: usize,
    /// The attribute.
    pub flag: Flag,
}

/// The outcome of attribute inference.
#[derive(Clone, Debug)]
pub struct AttrInferenceResult {
    /// The transformation with the weakest source attributes and strongest
    /// target attributes installed.
    pub inferred: Transform,
    /// Did inference remove at least one source attribute (weaker
    /// precondition than written)?
    pub pre_weakened: bool,
    /// Did inference add at least one target attribute (stronger
    /// postcondition than written)?
    pub post_strengthened: bool,
    /// Number of correctness checks performed.
    pub checks: usize,
}

/// All flag positions whose value may be varied.
fn flag_positions(t: &Transform) -> (Vec<FlagPos>, Vec<FlagPos>) {
    let collect = |stmts: &[alive_ir::Stmt], in_target: bool| -> Vec<FlagPos> {
        let mut out = Vec::new();
        for (i, s) in stmts.iter().enumerate() {
            if let Inst::BinOp { op, .. } = &s.inst {
                for &flag in op.allowed_flags() {
                    out.push(FlagPos {
                        in_target,
                        stmt: i,
                        flag,
                    });
                }
            }
        }
        out
    };
    (collect(&t.source, false), collect(&t.target, true))
}

fn current_flags(t: &Transform, pos: &FlagPos) -> bool {
    let stmts = if pos.in_target { &t.target } else { &t.source };
    match &stmts[pos.stmt].inst {
        Inst::BinOp { flags, .. } => flags.contains(&pos.flag),
        _ => false,
    }
}

/// Returns a copy of `t` with the given positions enabled (all other
/// variable positions disabled).
fn with_flags(t: &Transform, enabled: &[(FlagPos, bool)]) -> Transform {
    let mut out = t.clone();
    for (pos, on) in enabled {
        let stmts = if pos.in_target {
            &mut out.target
        } else {
            &mut out.source
        };
        if let Inst::BinOp { flags, .. } = &mut stmts[pos.stmt].inst {
            flags.retain(|f| *f != pos.flag);
            if *on {
                flags.push(pos.flag);
                flags.sort_unstable();
            }
        }
    }
    out
}

/// Infers optimal attributes for a transformation.
///
/// # Errors
///
/// Propagates verification errors; transformations that are incorrect as
/// written are reported via an error since no attribute assignment is
/// meaningful then.
pub fn infer_attributes(
    t: &Transform,
    config: &VerifyConfig,
) -> Result<AttrInferenceResult, VerifyError> {
    let (src_pos, tgt_pos) = flag_positions(t);
    let mut checks = 0usize;

    let mut is_correct = |cand: &Transform| -> Result<bool, VerifyError> {
        checks += 1;
        match verify(cand, config)? {
            Verdict::Valid { .. } => Ok(true),
            Verdict::Invalid(_) => Ok(false),
            Verdict::Unknown { reason } => Err(VerifyError {
                message: format!("attribute inference hit a budget limit: {reason}"),
            }),
        }
    };

    // The transformation as written must be correct.
    if !is_correct(t)? {
        return Err(VerifyError {
            message: "transformation is incorrect as written; fix it before inferring attributes"
                .into(),
        });
    }

    // Weakest precondition (relative to the transformation as written):
    // the smallest subset of the original source attributes that keeps the
    // transformation correct, with the target attributes unchanged.
    let orig_src_on: Vec<FlagPos> = src_pos
        .iter()
        .copied()
        .filter(|p| current_flags(t, p))
        .collect();
    let mut best_src: Vec<FlagPos> = orig_src_on.clone();
    'outer: for size in 0..orig_src_on.len() {
        for subset in subsets_of_size(&orig_src_on, size) {
            let assignment: Vec<(FlagPos, bool)> = orig_src_on
                .iter()
                .map(|p| (*p, subset.contains(p)))
                .collect();
            let cand = with_flags(t, &assignment);
            if is_correct(&cand)? {
                best_src = subset;
                break 'outer;
            }
        }
    }
    let pre_weakened = best_src.len() < orig_src_on.len();

    // Strongest postcondition (also relative to the original): the largest
    // superset of the original target attributes that is correct with the
    // source attributes as written. These are the attributes the rewrite
    // may propagate for later passes to exploit (§3.4's motivation).
    let src_assignment: Vec<(FlagPos, bool)> = src_pos
        .iter()
        .map(|p| (*p, orig_src_on.contains(p)))
        .collect();
    let orig_tgt_on: Vec<FlagPos> = tgt_pos
        .iter()
        .copied()
        .filter(|p| current_flags(t, p))
        .collect();
    let mut best_tgt: Vec<FlagPos> = orig_tgt_on.clone();
    'outer2: for size in (orig_tgt_on.len() + 1..=tgt_pos.len()).rev() {
        for subset in subsets_of_size(&tgt_pos, size) {
            // Only supersets of the original target flags: the developer's
            // flags are known-required by downstream passes.
            if !orig_tgt_on.iter().all(|p| subset.contains(p)) {
                continue;
            }
            let mut assignment = src_assignment.clone();
            assignment.extend(tgt_pos.iter().map(|p| (*p, subset.contains(p))));
            let cand = with_flags(t, &assignment);
            if is_correct(&cand)? {
                best_tgt = subset;
                break 'outer2;
            }
        }
    }
    let post_strengthened = best_tgt.len() > orig_tgt_on.len();

    // The combined output keeps the original source attributes (the
    // pattern the developer wrote) and installs the strongest target
    // attributes — the assignment used when generating C++.
    let mut final_assignment = src_assignment;
    final_assignment.extend(tgt_pos.iter().map(|p| (*p, best_tgt.contains(p))));
    let inferred = with_flags(t, &final_assignment);

    Ok(AttrInferenceResult {
        inferred,
        pre_weakened,
        post_strengthened,
        checks,
    })
}

/// All subsets of `items` with exactly `size` elements. Flag spaces are
/// tiny (≤ a handful of positions), so bitmask enumeration suffices.
fn subsets_of_size(items: &[FlagPos], size: usize) -> Vec<Vec<FlagPos>> {
    let n = items.len();
    assert!(n < usize::BITS as usize, "flag space unexpectedly large");
    let mut out = Vec::new();
    for mask in 0usize..(1 << n) {
        if mask.count_ones() as usize != size {
            continue;
        }
        out.push(
            items
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, p)| *p)
                .collect(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_ir::parse_transform;

    fn infer(src: &str) -> AttrInferenceResult {
        let t = parse_transform(src).unwrap();
        infer_attributes(&t, &VerifyConfig::fast()).unwrap()
    }

    #[test]
    fn propagates_nsw_to_target() {
        // x*2 => x<<1: with mul nsw in the source, shl nsw can be added to
        // the target (strongest postcondition).
        let r = infer("%r = mul nsw %x, 2\n=>\n%r = shl %x, 1");
        assert!(r.post_strengthened, "expected target strengthening");
        let printed = r.inferred.to_string();
        assert!(
            printed.contains("shl nsw")
                || printed.contains("shl nuw nsw")
                || printed.contains("shl nsw nuw"),
            "inferred: {printed}"
        );
    }

    #[test]
    fn drops_unneeded_source_attribute() {
        // The rewrite holds regardless of nsw on the source: weakest
        // precondition removes it.
        let r = infer("%r = add nsw %x, 0\n=>\n%r = %x");
        assert!(r.pre_weakened, "expected source weakening");
    }

    #[test]
    fn keeps_required_source_attribute() {
        // (x +nsw 1) sgt x => true requires nsw.
        let r = infer("%1 = add nsw %x, 1\n%2 = icmp sgt %1, %x\n=>\n%2 = true");
        assert!(!r.pre_weakened);
        assert!(r.inferred.to_string().contains("add nsw"));
    }

    #[test]
    fn incorrect_transform_is_an_error() {
        let t = parse_transform("%r = add %x, 1\n=>\n%r = add %x, 2").unwrap();
        assert!(infer_attributes(&t, &VerifyConfig::fast()).is_err());
    }

    #[test]
    fn subsets_enumeration() {
        let items: Vec<FlagPos> = (0..4)
            .map(|i| FlagPos {
                in_target: false,
                stmt: i,
                flag: Flag::Nsw,
            })
            .collect();
        assert_eq!(subsets_of_size(&items, 0).len(), 1);
        assert_eq!(subsets_of_size(&items, 1).len(), 4);
        assert_eq!(subsets_of_size(&items, 2).len(), 6);
        assert_eq!(subsets_of_size(&items, 3).len(), 4);
        assert_eq!(subsets_of_size(&items, 4).len(), 1);
        assert_eq!(subsets_of_size(&items, 5).len(), 0);
    }
}
