//! Counterexample extraction and Fig. 5-style formatting.

use alive_ir::Transform;
use alive_smt::{eval, Assignment, BvVal, TermPool, Value};
use alive_vcgen::TransformEnc;
use std::collections::BTreeMap;
use std::fmt;

/// Which correctness condition failed (paper §3.1.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// Condition 1: the target is undefined for inputs where the source is
    /// defined.
    Definedness,
    /// Condition 2: the target produces poison where the source does not.
    Poison,
    /// Condition 3: values differ.
    ValueMismatch,
    /// Condition 4: final memory states differ.
    MemoryMismatch,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Definedness => {
                write!(
                    f,
                    "Domain of definedness of Target is smaller than Source's"
                )
            }
            FailureKind::Poison => {
                write!(f, "Target introduces poison values absent from the Source")
            }
            FailureKind::ValueMismatch => write!(f, "Mismatch in values"),
            FailureKind::MemoryMismatch => write!(f, "Mismatch in final memory states"),
        }
    }
}

/// A concrete counterexample to a transformation, in the style of the
/// paper's Fig. 5.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Which condition failed.
    pub kind: FailureKind,
    /// The root register name.
    pub root: String,
    /// Width of the root value.
    pub root_width: u32,
    /// Input and constant values, in display order.
    pub bindings: Vec<(String, BvVal)>,
    /// Intermediate source values (register, value), in template order.
    pub intermediates: Vec<(String, BvVal)>,
    /// Value computed by the source root (when evaluable).
    pub source_value: Option<BvVal>,
    /// Value computed by the target root (when evaluable).
    pub target_value: Option<BvVal>,
    /// Summary of the type assignment under which the bug manifests.
    pub typing_summary: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ERROR: {} of i{} %{}",
            self.kind, self.root_width, self.root
        )?;
        writeln!(f, "Example:")?;
        for (name, v) in &self.bindings {
            writeln!(f, "{} i{} = {}", name, v.width(), v)?;
        }
        for (name, v) in &self.intermediates {
            writeln!(f, "%{} i{} = {}", name, v.width(), v)?;
        }
        match (self.source_value, self.target_value) {
            (Some(s), Some(t)) => {
                writeln!(f, "Source value: {s}")?;
                writeln!(f, "Target value: {t}")?;
            }
            (Some(s), None) => {
                writeln!(f, "Source value: {s}")?;
                writeln!(f, "Target value: (undefined or poison)")?;
            }
            _ => {}
        }
        Ok(())
    }
}

/// Builds a [`Counterexample`] from a model of the negated VC.
///
/// `model` binds the existential variables (inputs, constants, analysis
/// booleans, target undefs); source undef variables are completed with
/// zero, which is a valid instantiation because the violated condition is
/// universally quantified over them.
pub fn build_counterexample(
    pool: &TermPool,
    t: &Transform,
    enc: &TransformEnc,
    model: &Assignment,
    kind: FailureKind,
    typing_summary: String,
) -> Counterexample {
    // Complete the model: all source/target undefs and any unbound inputs
    // default to zero.
    let mut env = model.clone();
    for &u in enc.src.undefs.iter().chain(&enc.tgt.undefs) {
        if env.get(u).is_none() {
            env.set(u, BvVal::zero(pool.width(u)));
        }
    }
    for &v in enc.inputs.values().chain(enc.consts.values()) {
        if env.get(v).is_none() {
            env.set(v, BvVal::zero(pool.width(v)));
        }
    }
    for &p in &enc.pre_aux {
        if env.get(p).is_none() {
            env.set(p, true);
        }
    }

    // Stable display order: inputs (as used), then constants.
    let mut bindings: Vec<(String, BvVal)> = Vec::new();
    let mut ordered: BTreeMap<String, BvVal> = BTreeMap::new();
    for (name, &term) in &enc.inputs {
        if let Some(Value::Bv(v)) = env.get(term) {
            ordered.insert(format!("%{name}"), v);
        }
    }
    for (name, &term) in &enc.consts {
        if let Some(Value::Bv(v)) = env.get(term) {
            ordered.insert(name.clone(), v);
        }
    }
    bindings.extend(ordered);

    // Intermediate source values in template order (excluding the root).
    let root = t.root().to_string();
    let mut intermediates = Vec::new();
    for stmt in &t.source {
        let Some(name) = &stmt.name else { continue };
        if *name == root {
            continue;
        }
        if let Some(&term) = enc.src.values.get(name) {
            if let Ok(Value::Bv(v)) = eval(pool, term, &env) {
                intermediates.push((name.clone(), v));
            }
        }
    }

    let source_value = enc
        .src
        .values
        .get(&root)
        .and_then(|&term| match eval(pool, term, &env) {
            Ok(Value::Bv(v)) => Some(v),
            _ => None,
        });
    let target_value = enc
        .tgt
        .values
        .get(&root)
        .and_then(|&term| match eval(pool, term, &env) {
            Ok(Value::Bv(v)) => Some(v),
            _ => None,
        });

    let root_width = source_value
        .map(|v| v.width())
        .or(target_value.map(|v| v.width()))
        .unwrap_or_else(|| {
            enc.src
                .values
                .get(&root)
                .map(|&t| pool.width(t))
                .unwrap_or(0)
        });

    Counterexample {
        kind,
        root,
        root_width,
        bindings,
        intermediates,
        source_value,
        target_value,
        typing_summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_figure5_shape() {
        let cex = Counterexample {
            kind: FailureKind::ValueMismatch,
            root: "r".into(),
            root_width: 4,
            bindings: vec![
                ("%X".into(), BvVal::new(4, 0xF)),
                ("C1".into(), BvVal::new(4, 0x3)),
                ("C2".into(), BvVal::new(4, 0x8)),
            ],
            intermediates: vec![("s".into(), BvVal::new(4, 0x8))],
            source_value: Some(BvVal::new(4, 0x1)),
            target_value: Some(BvVal::new(4, 0xF)),
            typing_summary: "%r:i4".into(),
        };
        let s = cex.to_string();
        assert!(s.contains("ERROR: Mismatch in values of i4 %r"), "{s}");
        assert!(s.contains("%X i4 = 0xF (15, -1)"), "{s}");
        assert!(s.contains("C1 i4 = 0x3 (3)"), "{s}");
        assert!(s.contains("%s i4 = 0x8 (8, -8)"), "{s}");
        assert!(s.contains("Source value: 0x1 (1)"), "{s}");
        assert!(s.contains("Target value: 0xF (15, -1)"), "{s}");
    }
}
