//! The single durable-I/O seam every persistent artifact writes through.
//!
//! Before this module existed, the journal, the verdict store, the
//! slow-query log, and the scrub rewrite each hand-rolled their own
//! write/fsync/rename sequence — and each copy had a different gap:
//! ignored `sync_data` results, no parent-directory fsync after a create
//! or rename, rotation that clobbered its predecessor. This module is the
//! one audited copy of the discipline; the callers keep their formats and
//! recovery semantics but route every durability-relevant syscall through
//! here.
//!
//! Three rules, uniformly enforced:
//!
//! * **Syncs are propagated, never ignored.** Every fsync result reaches
//!   the caller. [`DurableFile`] additionally *poisons itself* on the
//!   first failed sync: after a failed fsync the kernel may have dropped
//!   the dirty pages while clearing the error, so a later fsync returning
//!   `Ok` proves nothing about the earlier write (the "fsyncgate" failure
//!   mode). The only honest reaction is to refuse every subsequent write
//!   until the file is reopened and its contents re-validated.
//! * **A file exists when its directory entry is durable.** `fsync` on
//!   the file alone does not persist a freshly created name or a rename;
//!   [`fsync_parent`] closes that gap and [`rename`] performs it
//!   automatically, so a crash can neither forget a newly created store
//!   nor resurrect the pre-rename file after an atomic rewrite.
//! * **Every durable operation is a numbered crash point.** With the
//!   `fault-injection` feature, `ALIVE_CRASH_AT=N[:kind]` makes the Nth
//!   durable operation process-wide misbehave: `abort` (the default)
//!   kills the process on the spot the way a power cut would, `torn`
//!   first lands half of an append's bytes, and `sync-fail` makes the
//!   operation return an injected I/O error instead of performing —
//!   exercising the propagation/poisoning path in-process. The torture
//!   harness (`crates/alive/tests/torture.rs`) sweeps N across whole
//!   serve/journal workloads through the real binaries and asserts
//!   recovery after every single crash point. Without the feature the
//!   hooks do not exist and cost nothing.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Deterministic crash-point injection (`ALIVE_CRASH_AT=N[:kind]`).
///
/// Counts every durable operation process-globally; at the Nth one the
/// scheduled [`CrashKind`] fires. Mirrors the `ALIVE_FAULT` machinery in
/// `alive-sat` but lives here because the ops being counted are the
/// durability seam's own.
#[cfg(feature = "fault-injection")]
pub mod crash {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, Once};

    /// What the Nth durable operation does instead of its job.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum CrashKind {
        /// Abort the process before the operation performs — the moral
        /// equivalent of a power cut at this exact durability boundary.
        Abort,
        /// For an append: land half the bytes, then abort — the torn
        /// write `kill -9` mid-`write` produces. For any other
        /// operation, identical to [`CrashKind::Abort`].
        Torn,
        /// Return an injected I/O error instead of performing, leaving
        /// the process alive — exercises error propagation and the
        /// fsyncgate poisoning path.
        SyncFail,
    }

    /// One scheduled crash: fire `kind` at the `at`-th (1-based) durable
    /// operation.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct CrashPlan {
        /// 1-based ordinal of the durable operation to sabotage.
        pub at: u64,
        /// The sabotage.
        pub kind: CrashKind,
    }

    impl CrashPlan {
        /// Parses `N` or `N:kind` (kinds: `abort`, `torn`, `sync-fail`).
        ///
        /// # Errors
        ///
        /// Returns a human-readable message for malformed specs.
        pub fn parse(spec: &str) -> Result<CrashPlan, String> {
            let (at_s, kind_s) = match spec.split_once(':') {
                Some((a, k)) => (a, Some(k)),
                None => (spec, None),
            };
            let at: u64 = at_s
                .trim()
                .parse()
                .map_err(|_| format!("crash point '{spec}': bad ordinal '{}'", at_s.trim()))?;
            if at == 0 {
                return Err(format!("crash point '{spec}': ordinals are 1-based"));
            }
            let kind = match kind_s.map(str::trim) {
                None | Some("abort") => CrashKind::Abort,
                Some("torn") => CrashKind::Torn,
                Some("sync-fail") => CrashKind::SyncFail,
                Some(other) => {
                    return Err(format!("crash point '{spec}': unknown kind '{other}'"));
                }
            };
            Ok(CrashPlan { at, kind })
        }
    }

    static PLAN: Mutex<Option<CrashPlan>> = Mutex::new(None);
    static OPS: AtomicU64 = AtomicU64::new(0);
    static ENV: Once = Once::new();

    /// Installs a plan (or clears it with `None`) and resets the op
    /// counter. Also disarms the one-shot `ALIVE_CRASH_AT` environment
    /// load, so tests installing plans directly cannot be clobbered.
    pub fn install(plan: Option<CrashPlan>) {
        ENV.call_once(|| {});
        OPS.store(0, Ordering::SeqCst);
        *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = plan;
    }

    /// Durable operations counted since the last [`install`] (or process
    /// start). Only counted while a plan is armed.
    pub fn ops_seen() -> u64 {
        OPS.load(Ordering::SeqCst)
    }

    /// Counts one durable operation and returns the scheduled crash for
    /// that ordinal, if any. A malformed `ALIVE_CRASH_AT` spec is ignored
    /// here — binaries validate it at startup where they can exit 64.
    pub(super) fn fire() -> Option<CrashKind> {
        ENV.call_once(|| {
            if let Ok(spec) = std::env::var("ALIVE_CRASH_AT") {
                if let Ok(plan) = CrashPlan::parse(&spec) {
                    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = Some(plan);
                }
            }
        });
        let plan = (*PLAN.lock().unwrap_or_else(|e| e.into_inner()))?;
        let ordinal = OPS.fetch_add(1, Ordering::SeqCst) + 1;
        (ordinal == plan.at).then_some(plan.kind)
    }
}

#[cfg(feature = "fault-injection")]
fn injected() -> io::Error {
    io::Error::other("injected durable-op failure (ALIVE_CRASH_AT sync-fail)")
}

/// Crash hook for every durable op except appends (which tear). Returns
/// the injected error for `sync-fail`, aborts for the other kinds, and is
/// a no-op when no crash point is armed (or the feature is off).
#[inline]
fn crash_point() -> io::Result<()> {
    #[cfg(feature = "fault-injection")]
    match crash::fire() {
        Some(crash::CrashKind::SyncFail) => return Err(injected()),
        Some(_) => std::process::abort(),
        None => {}
    }
    Ok(())
}

/// Creates (or truncates) the file at `path` for writing.
///
/// The new *name* is not durable until [`fsync_parent`] — callers write
/// and sync the initial contents first, then persist the entry, so a
/// crash leaves either no file or a complete one.
///
/// # Errors
///
/// Propagates the underlying `open`, plus any armed crash point.
pub fn create(path: &Path) -> io::Result<File> {
    crash_point()?;
    OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)
}

/// Opens an existing file for reading and appending. Not a durable
/// operation (nothing is modified), so not a crash point.
///
/// # Errors
///
/// Propagates the underlying `open`.
pub fn open_append(path: &Path) -> io::Result<File> {
    OpenOptions::new().read(true).append(true).open(path)
}

/// Appends `bytes` to `file`. The data is not durable until [`sync`].
///
/// # Errors
///
/// Propagates the underlying write, plus any armed crash point (the
/// `torn` kind lands half the bytes before aborting — exactly the state
/// `kill -9` mid-`write` leaves behind).
pub fn append(file: &mut File, bytes: &[u8]) -> io::Result<()> {
    #[cfg(feature = "fault-injection")]
    match crash::fire() {
        Some(crash::CrashKind::Torn) => {
            // The bytes reach the page cache (a syscall, not a userspace
            // buffer), so the torn prefix is visible to the recovering
            // process even though this one dies before returning.
            let _ = file.write_all(&bytes[..bytes.len() / 2]);
            std::process::abort();
        }
        Some(crash::CrashKind::SyncFail) => return Err(injected()),
        Some(crash::CrashKind::Abort) => std::process::abort(),
        None => {}
    }
    file.write_all(bytes)
}

/// Fsyncs `file`'s data. A record only counts as durable after this
/// returns `Ok` — and per fsyncgate, after it returns `Err` the file's
/// recent writes must be considered lost even if a retry would succeed.
///
/// # Errors
///
/// Propagates the underlying `sync_data`, plus any armed crash point.
pub fn sync(file: &File) -> io::Result<()> {
    crash_point()?;
    file.sync_data()
}

/// Truncates `file` to `len` bytes and syncs the new length — the
/// rollback primitive that erases a half-written tail.
///
/// # Errors
///
/// Propagates `set_len`/`sync_data`, plus any armed crash point (the
/// truncate and its sync are separate crash points).
pub fn truncate(file: &File, len: u64) -> io::Result<()> {
    crash_point()?;
    file.set_len(len)?;
    sync(file)
}

/// Atomically replaces `to` with `from`, then fsyncs the parent
/// directory so the swap itself is durable — a crash after this returns
/// can no longer resurrect the old file.
///
/// # Errors
///
/// Propagates the rename or directory sync, plus any armed crash point.
pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
    crash_point()?;
    std::fs::rename(from, to)?;
    fsync_parent(to)
}

/// Fsyncs the directory containing `path`, making `path`'s directory
/// entry (a fresh create, a completed rename) durable.
///
/// # Errors
///
/// Propagates the directory open/sync, plus any armed crash point. On
/// non-unix platforms directories cannot be opened for syncing; the call
/// degrades to the armed-crash-point check only.
pub fn fsync_parent(path: &Path) -> io::Result<()> {
    crash_point()?;
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// An append-only file handle enforcing the fsyncgate discipline: the
/// first failed sync (or unrepaired truncate) poisons the handle, and
/// every later operation refuses until the file is reopened.
#[derive(Debug)]
pub struct DurableFile {
    file: File,
    poisoned: bool,
}

impl DurableFile {
    /// Wraps an already-open handle.
    pub fn from_file(file: File) -> DurableFile {
        DurableFile {
            file,
            poisoned: false,
        }
    }

    /// Opens an existing file for reading and appending.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `open`.
    pub fn open_append(path: &Path) -> io::Result<DurableFile> {
        Ok(DurableFile::from_file(open_append(path)?))
    }

    /// The underlying handle (for reads and metadata).
    pub fn file(&self) -> &File {
        &self.file
    }

    /// Whether a failed sync has poisoned this handle.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Marks the handle untrusted; every later operation refuses. Used by
    /// callers whose *repair* of a failed write itself failed.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    fn guard(&self) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "file poisoned by an earlier failed sync; reopen to recover",
            ));
        }
        Ok(())
    }

    /// Appends `bytes`; not durable until [`DurableFile::sync`]. A failed
    /// write does *not* poison — the caller may still roll the file back
    /// with [`DurableFile::truncate`].
    ///
    /// # Errors
    ///
    /// Refuses when poisoned; otherwise propagates [`append`].
    pub fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.guard()?;
        append(&mut self.file, bytes)
    }

    /// Fsyncs pending data. A failure poisons the handle permanently:
    /// the kernel may have dropped the dirty pages while clearing the
    /// error, so no later success can vouch for the earlier writes.
    ///
    /// # Errors
    ///
    /// Refuses when poisoned; otherwise propagates [`sync`] (poisoning on
    /// failure).
    pub fn sync(&mut self) -> io::Result<()> {
        self.guard()?;
        sync(&self.file).inspect_err(|_| self.poisoned = true)
    }

    /// Truncates to `len` and syncs the new length. A failed sync
    /// poisons; a failed `set_len` is returned for the caller to judge
    /// (its rollback context knows whether the tail is now garbage).
    ///
    /// # Errors
    ///
    /// Refuses when poisoned; otherwise propagates [`truncate`].
    pub fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.guard()?;
        crash_point()?;
        self.file.set_len(len)?;
        self.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("alive-durable-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        path
    }

    #[test]
    fn create_append_sync_round_trips() {
        let path = tmp("roundtrip.bin");
        let mut f = create(&path).unwrap();
        append(&mut f, b"hello ").unwrap();
        append(&mut f, b"world\n").unwrap();
        sync(&f).unwrap();
        fsync_parent(&path).unwrap();
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello world\n");
    }

    #[test]
    fn truncate_erases_the_tail() {
        let path = tmp("truncate.bin");
        let mut f = create(&path).unwrap();
        append(&mut f, b"good\nbadtail").unwrap();
        sync(&f).unwrap();
        truncate(&f, 5).unwrap();
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"good\n");
    }

    #[test]
    fn rename_replaces_atomically() {
        let path = tmp("rename.bin");
        let tmp_path = tmp("rename.bin.tmp");
        std::fs::write(&path, b"old").unwrap();
        std::fs::write(&tmp_path, b"new").unwrap();
        rename(&tmp_path, &path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new");
        assert!(!tmp_path.exists());
    }

    #[test]
    fn poisoned_handle_refuses_everything() {
        let path = tmp("poison.bin");
        drop(create(&path).unwrap());
        let mut f = DurableFile::open_append(&path).unwrap();
        f.append(b"x").unwrap();
        f.sync().unwrap();
        f.poison();
        assert!(f.append(b"y").is_err());
        assert!(f.sync().is_err());
        assert!(f.truncate(0).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"x", "no write landed");
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn crash_plan_parses_and_rejects() {
        use crash::{CrashKind, CrashPlan};
        assert_eq!(
            CrashPlan::parse("7").unwrap(),
            CrashPlan {
                at: 7,
                kind: CrashKind::Abort
            }
        );
        assert_eq!(
            CrashPlan::parse("3:torn").unwrap(),
            CrashPlan {
                at: 3,
                kind: CrashKind::Torn
            }
        );
        assert_eq!(
            CrashPlan::parse("12:sync-fail").unwrap(),
            CrashPlan {
                at: 12,
                kind: CrashKind::SyncFail
            }
        );
        for bad in ["", "x", "0", "1:boom", ":torn"] {
            assert!(CrashPlan::parse(bad).is_err(), "{bad}");
        }
    }
}
