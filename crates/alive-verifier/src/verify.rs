//! The refinement checker (paper §3.1.2 and §3.3.2).
//!
//! For every feasible type assignment, four conditions are discharged by
//! refutation:
//!
//! 1. `∀I,P,Ū ∃U : ψ ⇒ δ̄` — target defined wherever the source is;
//! 2. `∀I,P,Ū ∃U : ψ ⇒ ρ̄` — target poison-free wherever the source is;
//! 3. `∀I,P,Ū ∃U : ψ ⇒ ι = ῑ` — equal root values;
//! 4. (memory) equal final memories at every address outside the source's
//!    stack allocations.
//!
//! Each negated condition is `∃(I,P,Ū) ∀U : ψ ∧ ¬goal`: quantifier-free
//! when the source has no `undef` (one SAT call), otherwise an
//! exists-forall query solved by the CEGIS loop in [`alive_smt`].

use crate::counterexample::{build_counterexample, Counterexample, FailureKind};
use alive_ir::{validate, Transform};
use alive_proof::{Certificate, CertificateMeta, Step};
use alive_smt::{
    eval, solve_exists_forall_full, Assignment, BvVal, EfConfig, EfResult, EvalError, ProofEvent,
    ProofTranscript, Sort, TermId, TermPool, Value,
};
use alive_typeck::{enumerate_typings, TypeAssignment, TypeckConfig};
use alive_vcgen::{encode_transform, TransformEnc};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// The overall outcome of verifying one transformation.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Proven correct for all checked type assignments.
    Valid {
        /// Number of type assignments checked.
        typings_checked: usize,
    },
    /// A counterexample was found.
    Invalid(Box<Counterexample>),
    /// Resource limits prevented a conclusion.
    Unknown {
        /// Which condition could not be decided.
        reason: String,
    },
}

impl Verdict {
    /// Is the transformation proven correct?
    pub fn is_valid(&self) -> bool {
        matches!(self, Verdict::Valid { .. })
    }

    /// Is the transformation proven incorrect?
    pub fn is_invalid(&self) -> bool {
        matches!(self, Verdict::Invalid(_))
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Valid { typings_checked } => {
                write!(
                    f,
                    "Optimization is correct ({typings_checked} type assignments)"
                )
            }
            Verdict::Invalid(cex) => write!(f, "{cex}"),
            Verdict::Unknown { reason } => write!(f, "Verification inconclusive: {reason}"),
        }
    }
}

/// Errors before verification can even start (parse/validate/type).
#[derive(Clone, Debug)]
pub struct VerifyError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification error: {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Configuration for the verifier.
#[derive(Clone, Debug, Default)]
pub struct VerifyConfig {
    /// Type enumeration settings.
    pub typeck: TypeckConfig,
    /// CEGIS settings for `undef`-bearing sources.
    pub ef: EfConfig,
}

impl VerifyConfig {
    /// Fast profile (widths 4 and 8) used by corpus-scale runs.
    pub fn fast() -> VerifyConfig {
        VerifyConfig {
            typeck: TypeckConfig::fast(),
            ef: EfConfig::default(),
        }
    }
}

/// Wall time spent in each verification phase, summed across typings.
///
/// The phases partition one verification end to end: type enumeration,
/// term encoding (templates, ψ, check matrices), solving (quantifier-free
/// SAT or the CEGIS loop), and counterexample re-validation/construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Enumerating feasible type assignments.
    pub typeck: Duration,
    /// Encoding templates and refinement-check matrices.
    pub encode: Duration,
    /// Discharging the checks (SAT/CEGIS).
    pub solve: Duration,
    /// Concretely re-validating and rendering counterexamples.
    pub check: Duration,
}

impl PhaseTimes {
    /// Accumulates another measurement (used when merging attempts).
    pub fn absorb(&mut self, other: &PhaseTimes) {
        self.typeck += other.typeck;
        self.encode += other.encode;
        self.solve += other.solve;
        self.check += other.check;
    }
}

/// Per-condition timing and statistics for one verification.
#[derive(Clone, Debug, Default)]
pub struct VerifyStats {
    /// Number of type assignments examined.
    pub typings: usize,
    /// Total SMT/SAT queries issued (at least; CEGIS rounds count once per
    /// candidate/verify pair).
    pub queries: usize,
    /// Total SAT conflicts spent across every query.
    pub conflicts: u64,
    /// Total literals propagated across every query.
    pub propagations: u64,
    /// Total decisions taken across every query.
    pub decisions: u64,
    /// Total solver restarts across every query.
    pub restarts: u64,
    /// SAT `solve` calls issued across every query.
    pub sat_calls: u64,
    /// CEGIS refinement rounds across every query (0 when every source was
    /// `undef`-free).
    pub ef_rounds: u64,
    /// Where the wall time went.
    pub phases: PhaseTimes,
}

impl VerifyStats {
    /// Folds one solver outcome's counters into the running totals.
    fn absorb_ef(&mut self, s: &alive_smt::EfStats) {
        self.conflicts += s.conflicts;
        self.propagations += s.propagations;
        self.decisions += s.decisions;
        self.restarts += s.restarts;
        self.sat_calls += s.sat_calls;
        self.ef_rounds += s.rounds as u64;
    }
}

/// Verifies a transformation across all feasible type assignments.
///
/// # Errors
///
/// Returns [`VerifyError`] when the transformation is ill-formed,
/// ill-typed, or uses unsupported constructs.
pub fn verify(t: &Transform, config: &VerifyConfig) -> Result<Verdict, VerifyError> {
    verify_with_stats(t, config).map(|(v, _)| v)
}

/// Like [`verify`], also returning statistics.
///
/// # Errors
///
/// Returns [`VerifyError`] when the transformation is ill-formed,
/// ill-typed, or uses unsupported constructs.
pub fn verify_with_stats(
    t: &Transform,
    config: &VerifyConfig,
) -> Result<(Verdict, VerifyStats), VerifyError> {
    verify_impl(t, config, None)
}

/// Like [`verify_with_stats`], and additionally emits one refinement
/// [`Certificate`] per condition discharged by refutation.
///
/// Certificates are produced only for conditions the SAT solver actually
/// refuted, so a `Valid` verdict over `n` typings comes with `3n` (or `4n`
/// with memory operations) certificates; `Invalid`/`Unknown` verdicts carry
/// the certificates of the conditions that passed before the failing one.
/// Each certificate ties the refuting proof to the transform name, the
/// concrete type assignment, and the refinement condition, and re-checking
/// it needs only the independent `alive-proof` checker.
///
/// # Errors
///
/// Returns [`VerifyError`] when the transformation is ill-formed,
/// ill-typed, or uses unsupported constructs.
pub fn verify_with_certificates(
    t: &Transform,
    config: &VerifyConfig,
) -> Result<(Verdict, VerifyStats, Vec<Certificate>), VerifyError> {
    let mut certificates = Vec::new();
    let (verdict, stats) = verify_impl(t, config, Some(&mut certificates))?;
    Ok((verdict, stats, certificates))
}

/// What checking one type assignment concluded.
enum TypingOutcome {
    /// Every refinement condition was refuted; move to the next typing.
    Passed,
    /// A final verdict (Invalid or Unknown) — stop here.
    Stop(Verdict),
}

/// Renders a panic payload for an `Unknown` reason string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn verify_impl(
    t: &Transform,
    config: &VerifyConfig,
    mut certificates: Option<&mut Vec<Certificate>>,
) -> Result<(Verdict, VerifyStats), VerifyError> {
    // The tracer travels inside the CEGIS config so one installation covers
    // the whole stack (driver phases here, blasting and SAT below).
    let tracer = config.ef.tracer.clone();
    let mut stats = VerifyStats::default();

    validate(t).map_err(|e| VerifyError {
        message: e.to_string(),
    })?;
    let typeck_start = Instant::now();
    let typings = {
        let _span = tracer.span("typeck");
        enumerate_typings(t, &config.typeck)
    }
    .map_err(|e| VerifyError {
        message: e.to_string(),
    })?;
    stats.phases.typeck += typeck_start.elapsed();
    let transform_name = t.name.clone().unwrap_or_else(|| "<unnamed>".to_string());

    for (typing_idx, typing) in typings.iter().enumerate() {
        stats.typings += 1;
        let _typing_span = tracer.span_with("typing", || typing_idx.to_string());
        // Panic isolation (outer boundary): a defect anywhere in encoding,
        // solving, or counterexample construction for one typing degrades
        // the verdict to Unknown instead of tearing down the caller. The
        // per-condition boundary inside gives more precise reasons; this one
        // catches everything else.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            check_one_typing(
                t,
                typing,
                config,
                &transform_name,
                &mut stats,
                certificates.as_deref_mut(),
            )
        }));
        match caught {
            Ok(Ok(TypingOutcome::Passed)) => {}
            Ok(Ok(TypingOutcome::Stop(v))) => return Ok((v, stats)),
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                return Ok((
                    Verdict::Unknown {
                        reason: format!(
                            "internal error: panic while checking typing {}: {}",
                            typing.summary(),
                            panic_message(payload.as_ref())
                        ),
                    },
                    stats,
                ));
            }
        }
    }
    Ok((
        Verdict::Valid {
            typings_checked: typings.len(),
        },
        stats,
    ))
}

fn check_one_typing(
    t: &Transform,
    typing: &TypeAssignment,
    config: &VerifyConfig,
    transform_name: &str,
    stats: &mut VerifyStats,
    mut certificates: Option<&mut Vec<Certificate>>,
) -> Result<TypingOutcome, VerifyError> {
    let tracer = config.ef.tracer.clone();
    let encode_start = Instant::now();
    let encode_span = tracer.span("encode");
    let mut pool = TermPool::new();
    let enc = encode_transform(&mut pool, t, typing).map_err(|e| VerifyError {
        message: e.to_string(),
    })?;
    let psi = enc.psi(&mut pool);

    let root = enc.root.clone();
    let tgt_def = enc.tgt.defined[&root];
    let tgt_poison = enc.tgt.poison_free[&root];
    let src_val = enc.src.values[&root];
    let tgt_val = enc.tgt.values[&root];

    let mut exist_vars = enc.exist_vars();
    exist_vars.extend(enc.tgt.undefs.iter().copied());
    let univ_vars: Vec<TermId> = enc.src.undefs.clone();

    // The negated conditions 1–3 share the existential variables; the
    // memory condition adds the quantified address.
    let mut checks: Vec<(FailureKind, TermId, Vec<TermId>)> = {
        let not_def = pool.not(tgt_def);
        let c1 = pool.and2(psi, not_def);
        let not_poison = pool.not(tgt_poison);
        let c2 = pool.and2(psi, not_poison);
        let neq = pool.ne(src_val, tgt_val);
        let c3 = pool.and2(psi, neq);
        vec![
            (FailureKind::Definedness, c1, exist_vars.clone()),
            (FailureKind::Poison, c2, exist_vars.clone()),
            (FailureKind::ValueMismatch, c3, exist_vars.clone()),
        ]
    };
    if enc.src.memory.has_ops || enc.tgt.memory.has_ops {
        let (matrix, evars) = memory_check_matrix(&mut pool, &enc, &exist_vars);
        checks.push((FailureKind::MemoryMismatch, matrix, evars));
    }
    drop(encode_span);
    stats.phases.encode += encode_start.elapsed();

    let want_proof = certificates.is_some();
    for (kind, matrix, evars) in checks {
        stats.queries += 1;
        // Panic isolation (inner boundary): a panic inside the solver stack
        // is reported against the condition being discharged.
        let solve_start = Instant::now();
        let solved = catch_unwind(AssertUnwindSafe(|| {
            solve_exists_forall_full(
                &mut pool, &evars, &univ_vars, matrix, &config.ef, want_proof,
            )
        }));
        stats.phases.solve += solve_start.elapsed();
        let outcome = match solved {
            Ok(o) => o,
            Err(payload) => {
                return Ok(TypingOutcome::Stop(Verdict::Unknown {
                    reason: format!(
                        "internal error: panic during {kind} check: {}",
                        panic_message(payload.as_ref())
                    ),
                }));
            }
        };
        stats.absorb_ef(&outcome.stats);
        match outcome.result {
            EfResult::Unsat => {
                if let (Some(certs), Some(transcript)) =
                    (certificates.as_deref_mut(), outcome.transcript)
                {
                    certs.push(certificate_from_transcript(
                        transform_name,
                        &typing.summary(),
                        kind,
                        transcript,
                    ));
                }
            }
            EfResult::Sat(model) => {
                // Dual-check: a counterexample is only reported after the
                // reference evaluator concretely reproduces the failure,
                // so a SAT-solver or bit-blaster bug cannot manufacture
                // a bogus Invalid verdict.
                let check_start = Instant::now();
                let _span = tracer.span("check-model");
                if !revalidate_model(&pool, matrix, &model, &univ_vars) {
                    stats.phases.check += check_start.elapsed();
                    return Ok(TypingOutcome::Stop(Verdict::Unknown {
                        reason: format!(
                            "{kind} counterexample failed concrete re-validation \
                             (possible solver defect)"
                        ),
                    }));
                }
                let cex = build_counterexample(&pool, t, &enc, &model, kind, typing.summary());
                stats.phases.check += check_start.elapsed();
                return Ok(TypingOutcome::Stop(Verdict::Invalid(Box::new(cex))));
            }
            EfResult::Unknown(reason) => {
                return Ok(TypingOutcome::Stop(Verdict::Unknown {
                    reason: format!("{kind} check: {reason}"),
                }));
            }
        }
    }
    Ok(TypingOutcome::Passed)
}

/// Converts an SMT-layer DRAT transcript into a metadata-carrying
/// certificate (the only place the solver's event types meet the checker's
/// step types).
fn certificate_from_transcript(
    transform: &str,
    typing: &str,
    kind: FailureKind,
    transcript: ProofTranscript,
) -> Certificate {
    let steps = transcript
        .events
        .into_iter()
        .map(|e| match e {
            ProofEvent::Original(c) => Step::Add(c),
            ProofEvent::Learned(c) => Step::Learn(c),
            ProofEvent::Deleted(c) => Step::Delete(c),
        })
        .collect();
    Certificate {
        meta: CertificateMeta {
            transform: transform.to_string(),
            typing: typing.to_string(),
            check: check_label(kind).to_string(),
        },
        num_vars: transcript.num_vars,
        steps,
    }
}

/// Stable label for a refinement condition in certificate metadata.
fn check_label(kind: FailureKind) -> &'static str {
    match kind {
        FailureKind::Definedness => "definedness",
        FailureKind::Poison => "poison",
        FailureKind::ValueMismatch => "value",
        FailureKind::MemoryMismatch => "memory",
    }
}

/// Concretely re-evaluates `matrix` under a counterexample model with the
/// reference evaluator.
///
/// Universal variables (source `undef`s) are instantiated at both all-zeros
/// and all-ones: an `EfResult::Sat` model claims the failure manifests for
/// *every* universal choice, so both instantiations must evaluate to true.
/// Model gaps (variables never blasted) default to zero, mirroring
/// `SmtSolver::model_bv`.
fn revalidate_model(
    pool: &TermPool,
    matrix: TermId,
    model: &Assignment,
    univ_vars: &[TermId],
) -> bool {
    let instantiations: &[bool] = if univ_vars.is_empty() {
        &[false]
    } else {
        &[false, true]
    };
    for &ones in instantiations {
        let mut env = model.clone();
        for &u in univ_vars {
            match pool.sort(u) {
                Sort::Bool => env.set(u, ones),
                Sort::BitVec(w) => env.set(u, if ones { BvVal::ones(w) } else { BvVal::zero(w) }),
            }
        }
        if !eval_defaulting_unbound(pool, matrix, env) {
            return false;
        }
    }
    true
}

/// Evaluates a boolean term, binding any unbound variable to zero/false
/// (the SMT layer's own completion for unconstrained model variables).
fn eval_defaulting_unbound(pool: &TermPool, root: TermId, mut env: Assignment) -> bool {
    // Each retry binds one more variable, so this terminates.
    loop {
        match eval(pool, root, &env) {
            Ok(Value::Bool(b)) => return b,
            Ok(Value::Bv(_)) => return false, // not a boolean matrix: reject
            Err(EvalError::UnboundVar(id, _)) => match pool.sort(id) {
                Sort::Bool => env.set(id, false),
                Sort::BitVec(w) => env.set(id, BvVal::zero(w)),
            },
        }
    }
}

/// Builds the negated memory condition: some address (outside the source's
/// stack allocations) holds different bytes in the two final memories while
/// the precondition and allocation constraints hold. Returns the matrix and
/// the existential variables extended with the quantified address.
fn memory_check_matrix(
    pool: &mut TermPool,
    enc: &TransformEnc,
    exist_vars: &[TermId],
) -> (TermId, Vec<TermId>) {
    let pw = enc.ptr_width;
    let addr = pool.var("mem.addr", Sort::BitVec(pw));

    let mut base = alive_vcgen::BaseMemory::default();
    let src_byte = enc.src.memory.read_byte(pool, &mut base, addr);
    let tgt_byte = enc.tgt.memory.read_byte(pool, &mut base, addr);
    let differs = pool.ne(src_byte, tgt_byte);

    let mut parts = vec![enc.pre, differs];
    parts.extend(enc.src.alloca_constraints.iter().copied());
    parts.extend(enc.tgt.alloca_constraints.iter().copied());
    parts.extend(enc.mem_consistency.iter().copied());
    parts.extend(base.constraints.iter().copied());
    // Stack memory is private to the templates: exempt source allocations.
    for &(base_ptr, size) in enc
        .src
        .alloca_regions
        .iter()
        .chain(enc.tgt.alloca_regions.iter())
    {
        let size_t = pool.bv(pw, size as u128);
        let end = pool.bv_add(base_ptr, size_t);
        let below = pool.bv_ult(addr, base_ptr);
        let above = pool.bv_uge(addr, end);
        let outside = pool.or2(below, above);
        parts.push(outside);
    }
    let matrix = pool.and(parts);

    let mut evars = exist_vars.to_vec();
    evars.push(addr);
    (matrix, evars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_ir::parse_transform;

    fn check(src: &str) -> Verdict {
        let t = parse_transform(src).unwrap();
        verify(&t, &VerifyConfig::default()).unwrap()
    }

    #[test]
    fn intro_example_is_valid() {
        let v = check("%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x");
        assert!(v.is_valid(), "{v}");
    }

    #[test]
    fn wrong_constant_is_invalid() {
        let v = check("%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C, %x");
        assert!(v.is_invalid(), "{v}");
        if let Verdict::Invalid(cex) = &v {
            assert_eq!(cex.kind, FailureKind::ValueMismatch);
        }
    }

    #[test]
    fn nsw_comparison_folds_to_true() {
        // (x +nsw 1) > x  ==>  true   (paper §2.4)
        let v = check("%1 = add nsw %x, 1\n%2 = icmp sgt %1, %x\n=>\n%2 = true");
        assert!(v.is_valid(), "{v}");
    }

    #[test]
    fn without_nsw_the_same_fold_is_invalid() {
        let v = check("%1 = add %x, 1\n%2 = icmp sgt %1, %x\n=>\n%2 = true");
        assert!(v.is_invalid(), "{v}");
    }

    #[test]
    fn select_undef_example_is_valid() {
        // Paper §3.1.3: ∀u2 ∃u1 — target ashr of undef by 3 yields 0 or -1
        // patterns the source select can also produce.
        let v = check("%r = select undef, i4 -1, 0\n=>\n%r = ashr undef, 3");
        assert!(v.is_valid(), "{v}");
    }

    #[test]
    fn undef_source_cannot_become_arbitrary_target() {
        // Source `or 1, undef` is always odd; target undef can be even.
        let v = check("%r = or i4 1, undef\n=>\n%r = undef");
        assert!(v.is_invalid(), "{v}");
    }

    #[test]
    fn target_introducing_division_is_less_defined() {
        let v = check("%r = add %x, %y\n=>\n%d = sdiv %x, %y\n%m = mul %d, %y\n%rem = srem %x, %y\n%s = add %m, %rem\n%r = add %s, 0");
        // x + y != (x/y)*y + x%y + 0 in general... actually it is equal when
        // defined; the bug is definedness (y = 0). Either failure is a
        // rejection.
        assert!(v.is_invalid(), "{v}");
        if let Verdict::Invalid(cex) = &v {
            assert_eq!(cex.kind, FailureKind::Definedness);
        }
    }

    #[test]
    fn poison_introduction_is_caught() {
        // Adding nsw on the target where the source had none.
        let v = check("%r = add %x, %y\n=>\n%r = add nsw %x, %y");
        assert!(v.is_invalid(), "{v}");
        if let Verdict::Invalid(cex) = &v {
            assert_eq!(cex.kind, FailureKind::Poison);
        }
    }

    #[test]
    fn dropping_nsw_is_allowed() {
        let v = check("%r = add nsw %x, %y\n=>\n%r = add %x, %y");
        assert!(v.is_valid(), "{v}");
    }

    #[test]
    fn precondition_gates_validity() {
        // shl by C1 equals mul by (1<<C1); with the precondition C1 == 1,
        // x << 1 == x + x.
        let v = check("Pre: C1 == 1\n%r = shl %x, C1\n=>\n%r = add %x, %x");
        assert!(v.is_valid(), "{v}");
        // Without the precondition this is wrong.
        let v2 = check("%r = shl %x, C1\n=>\n%r = add %x, %x");
        assert!(v2.is_invalid(), "{v2}");
    }

    #[test]
    fn division_by_zero_ub_enables_rewrite() {
        // udiv x, x == 1 is justified because x==0 is UB in the source.
        let v = check("%r = udiv %x, %x\n=>\n%r = 1");
        assert!(v.is_valid(), "{v}");
    }

    #[test]
    fn memory_store_load_forwarding_valid() {
        let v = check("store %v, %p\n%r = load %p\n=>\nstore %v, %p\n%r = %v");
        assert!(v.is_valid(), "{v}");
    }

    #[test]
    fn memory_dropping_a_store_is_invalid() {
        let v = check("store %v, %p\n%r = load %p\n=>\n%r = %v");
        assert!(v.is_invalid(), "{v}");
        if let Verdict::Invalid(cex) = &v {
            assert_eq!(cex.kind, FailureKind::MemoryMismatch);
        }
    }

    #[test]
    fn counterexample_carries_bindings() {
        let v = check("%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C, %x");
        let Verdict::Invalid(cex) = v else {
            panic!("expected invalid")
        };
        let names: Vec<&str> = cex.bindings.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"%x"), "{names:?}");
        assert!(names.contains(&"C"), "{names:?}");
        assert!(cex.source_value.is_some());
        assert!(cex.target_value.is_some());
        // Counterexamples are biased to small widths (first in the config).
        assert_eq!(cex.root_width, 4);
    }

    fn check_certified(src: &str) -> (Verdict, VerifyStats, Vec<Certificate>) {
        let t = parse_transform(src).unwrap();
        verify_with_certificates(&t, &VerifyConfig::default()).unwrap()
    }

    #[test]
    fn valid_transform_yields_checked_certificates() {
        let (v, stats, certs) =
            check_certified("%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x");
        assert!(v.is_valid(), "{v}");
        // Every refuted condition carries a certificate, one per query.
        assert_eq!(certs.len(), stats.queries);
        assert!(!certs.is_empty());
        for cert in &certs {
            let report = cert
                .check()
                .unwrap_or_else(|e| panic!("certificate for {} failed: {e}", cert.meta.check));
            assert!(report.learned_checked > 0 || report.steps > 0);
            assert_eq!(cert.meta.transform, "<unnamed>");
            assert!(!cert.meta.typing.is_empty());
            assert!(
                ["definedness", "poison", "value", "memory"].contains(&cert.meta.check.as_str()),
                "{}",
                cert.meta.check
            );
        }
        // All three refinement conditions are represented.
        for label in ["definedness", "poison", "value"] {
            assert!(
                certs.iter().any(|c| c.meta.check == label),
                "missing {label} certificate"
            );
        }
    }

    #[test]
    fn memory_transform_yields_memory_certificate() {
        let (v, _, certs) =
            check_certified("store %v, %p\n%r = load %p\n=>\nstore %v, %p\n%r = %v");
        assert!(v.is_valid(), "{v}");
        assert!(certs.iter().any(|c| c.meta.check == "memory"));
        for cert in &certs {
            cert.check().expect("certificate must check");
        }
    }

    #[test]
    fn invalid_transform_keeps_earlier_certificates_checkable() {
        // Value mismatch: definedness and poison certificates for the first
        // typing still exist and must check.
        let (v, _, certs) = check_certified("%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C, %x");
        assert!(v.is_invalid(), "{v}");
        for cert in &certs {
            cert.check().expect("certificate must check");
        }
    }

    #[test]
    fn certificates_round_trip_through_text() {
        let (_, _, certs) =
            check_certified("%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x");
        for cert in &certs {
            let text = cert.to_text();
            let parsed = Certificate::parse(&text).expect("round trip parse");
            assert_eq!(&parsed, cert);
            parsed.check().expect("parsed certificate must check");
        }
    }

    #[test]
    fn truncated_certificate_is_rejected() {
        let (_, _, mut certs) =
            check_certified("%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x");
        let cert = certs.first_mut().expect("at least one certificate");
        // Drop the final (refuting) learned step: no empty clause remains.
        let last_learn = cert
            .steps
            .iter()
            .rposition(|s| matches!(s, Step::Learn(c) if c.is_empty()))
            .expect("refutation step present");
        cert.steps.truncate(last_learn);
        assert!(cert.check().is_err());
    }

    #[test]
    fn plain_verify_matches_certified_verify() {
        for src in [
            "%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x",
            "%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C, %x",
            "%r = add nsw %x, 1\n%2 = icmp sgt %r, %x\n=>\n%2 = true",
        ] {
            let t = parse_transform(src).unwrap();
            let plain = verify(&t, &VerifyConfig::default()).unwrap();
            let (certified, _, _) = verify_with_certificates(&t, &VerifyConfig::default()).unwrap();
            assert_eq!(plain.is_valid(), certified.is_valid(), "{src}");
            assert_eq!(plain.is_invalid(), certified.is_invalid(), "{src}");
        }
    }
}
