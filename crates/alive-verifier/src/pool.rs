//! The supervised parallel corpus driver: worker pool, watchdog, and
//! write-ahead journaling.
//!
//! [`run_supervised`] runs a corpus across `--jobs N` worker threads
//! pulling task indices from a shared queue. Each task is verified by
//! [`verify_one`](crate::driver) under its own [`CancelToken`] and budget,
//! so one misbehaving query can be cut down without touching its siblings.
//! Three supervision mechanisms sit around the workers:
//!
//! * **The watchdog thread** polls every active worker slot. It fires a
//!   task's cancel token when the task's deadline passes (a backstop for
//!   queries that stop polling their budget) and propagates global
//!   cancellation (Ctrl-C) to every in-flight task. If a worker ignores
//!   cancellation for longer than [`PoolConfig::grace`], the watchdog
//!   **detaches** it: the thread is leaked, the task is recorded as
//!   [`OutcomeKind::Hung`] with its partial stats, and — if work remains —
//!   a replacement worker is spawned so the pool never shrinks.
//! * **The write-ahead journal**: every completed outcome is appended and
//!   fsync'd *before* it is counted, so a `kill -9` at any instant loses
//!   at most the in-flight transforms, never a completed verdict (see
//!   [`crate::journal`] and `--resume`).
//! * **Input-order assembly**: outcomes arrive in completion order but the
//!   [`RunReport`] lists them in corpus order, so parallel and sequential
//!   runs of one corpus produce identical reports apart from timings and
//!   worker ids.
//!
//! Fail-fast (`keep_going == false`) in a parallel run stops *dispatch* at
//! the first `Invalid`/`Error`: queued work is skipped, but tasks already
//! in flight run to completion and appear in the report (under `--jobs 1`
//! this degenerates to the sequential fail-fast behavior).

use crate::driver::{verify_one, Attempt, DriverConfig, OutcomeKind, RunReport, TransformOutcome};
use crate::journal::Journal;
use alive_ir::Transform;
use alive_smt::CancelToken;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Pool-level settings for [`run_supervised`].
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of worker threads (clamped to at least 1).
    pub jobs: usize,
    /// How long a cancelled worker may keep running before the watchdog
    /// detaches it and records the task as hung.
    pub grace: Duration,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            jobs: 1,
            grace: Duration::from_secs(2),
        }
    }
}

/// One unit of work for the pool: which corpus index to verify, at what
/// budget escalation, and with what prior attempt history (requeues from a
/// resumed journal carry the attempts of the run that failed to decide
/// them).
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Index into the corpus slice.
    pub index: usize,
    /// Budget multiplier: 1 for fresh work, larger for requeued entries.
    pub scale: u32,
    /// Attempts inherited from a previous run's journal record.
    pub prior: Vec<Attempt>,
}

impl TaskSpec {
    /// A fresh, unescalated task.
    pub fn fresh(index: usize) -> TaskSpec {
        TaskSpec {
            index,
            scale: 1,
            prior: Vec::new(),
        }
    }
}

/// Why a slot's cancel token was raised (drives the honest reason string).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CancelCause {
    /// Global cancellation (Ctrl-C) propagated to the task.
    Global,
    /// The watchdog fired the token because the task's deadline passed.
    Deadline,
}

/// Shared state of one worker slot, inspected by the watchdog.
#[derive(Debug)]
struct SlotState {
    /// Worker id (stable across the worker's tasks; replacements get new
    /// ids).
    worker: u32,
    /// Is a task currently running in this slot?
    busy: bool,
    /// Did the watchdog give up on this worker? A detached slot's thread
    /// is leaked and its eventual result discarded.
    detached: bool,
    /// Corpus index of the running task.
    task: usize,
    /// When the running task started.
    started: Instant,
    /// Deadline of the task's current attempt (re-armed per attempt).
    deadline: Option<Instant>,
    /// When the task's token was cancelled, and why.
    cancelled_at: Option<(Instant, CancelCause)>,
    /// The running task's cancel token.
    token: CancelToken,
    /// Prior attempt history of the running task (for hung records).
    prior: Vec<Attempt>,
}

/// One pool worker: its supervision state and its join handle. The handle
/// is `None` while being initialized and after being taken for join.
#[derive(Debug)]
struct WorkerEntry {
    slot: SlotState,
    handle: Option<JoinHandle<()>>,
}

/// Everything the workers, watchdog, and supervisor share.
struct Shared {
    transforms: Vec<(String, Transform)>,
    config: DriverConfig,
    grace: Duration,
    /// Pending tasks with their enqueue instant, so the tracer can report
    /// how long each task sat waiting for a worker.
    queue: Mutex<VecDeque<(TaskSpec, Instant)>>,
    workers: Mutex<Vec<WorkerEntry>>,
    results: mpsc::Sender<(usize, TransformOutcome)>,
    shutdown: AtomicBool,
    /// Raised by the worker that hits an Invalid/Error outcome without
    /// `keep_going`, *before* it publishes the result: workers stop
    /// pulling new tasks immediately instead of racing the supervisor's
    /// queue drain (a jobs=1 run skips exactly like the sequential
    /// driver).
    fail_fast: AtomicBool,
    next_worker_id: AtomicU32,
}

/// Spawns one worker thread with a fresh slot; returns nothing — the
/// worker registers itself in `shared.workers`.
fn spawn_worker(shared: &Arc<Shared>) {
    let worker_id = shared.next_worker_id.fetch_add(1, Ordering::SeqCst);
    let mut workers = shared.workers.lock().unwrap_or_else(|e| e.into_inner());
    let slot_idx = workers.len();
    workers.push(WorkerEntry {
        slot: SlotState {
            worker: worker_id,
            busy: false,
            detached: false,
            task: 0,
            started: Instant::now(),
            deadline: None,
            cancelled_at: None,
            token: CancelToken::new(),
            prior: Vec::new(),
        },
        handle: None,
    });
    let shared2 = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("alive-worker-{worker_id}"))
        .spawn(move || worker_loop(&shared2, slot_idx, worker_id))
        .expect("spawn worker thread");
    workers[slot_idx].handle = Some(handle);
}

/// The worker main loop: pull a task, verify it under a per-task token,
/// publish the outcome — unless the watchdog detached us meanwhile.
fn worker_loop(shared: &Arc<Shared>, slot_idx: usize, worker_id: u32) {
    // Spans the worker's whole lifetime; its self-time (everything outside
    // the nested pool.task spans) is the dispatch overhead — queue locking,
    // slot bookkeeping, result publication. A detached worker never closes
    // it, same as its task span.
    let _worker_span = shared
        .config
        .verify
        .ef
        .tracer
        .span_with("pool.worker", || worker_id.to_string());
    loop {
        if shared.config.cancel.is_cancelled()
            || shared.shutdown.load(Ordering::SeqCst)
            || shared.fail_fast.load(Ordering::SeqCst)
        {
            return;
        }
        let (task, waited, depth_left) = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match queue.pop_front() {
                Some((t, enqueued)) => (t, enqueued.elapsed(), queue.len() as u64),
                None => return,
            }
        };
        let tracer = shared.config.verify.ef.tracer.clone();
        tracer.sample("pool.queue_wait_us", waited.as_micros() as u64);
        tracer.gauge("pool.queue_depth", depth_left);
        let token = CancelToken::new();
        {
            let mut workers = shared.workers.lock().unwrap_or_else(|e| e.into_inner());
            let slot = &mut workers[slot_idx].slot;
            slot.busy = true;
            slot.task = task.index;
            slot.started = Instant::now();
            slot.deadline = None;
            slot.cancelled_at = None;
            slot.token = token.clone();
            slot.prior = task.prior.clone();
        }
        let (name, transform) = &shared.transforms[task.index];
        // The task span stays open for as long as the verification runs; a
        // worker that the watchdog detaches never closes it, which is
        // exactly what the trace should show (readers treat still-open
        // spans at end-of-trace as detached work).
        let task_span = tracer.span_with("pool.task", || name.clone());
        let mut outcome = verify_one(
            name,
            transform,
            &shared.config,
            &token,
            task.scale,
            worker_id,
            |deadline| {
                let mut workers = shared.workers.lock().unwrap_or_else(|e| e.into_inner());
                workers[slot_idx].slot.deadline = deadline;
            },
        );
        drop(task_span);
        // The task token is private, so "cancelled" can mean two things:
        // global cancellation, or the watchdog's deadline backstop. Keep
        // the reason honest.
        if outcome.kind == OutcomeKind::Unknown
            && outcome.detail.contains("cancelled")
            && !shared.config.cancel.is_cancelled()
        {
            let cause = {
                let workers = shared.workers.lock().unwrap_or_else(|e| e.into_inner());
                workers[slot_idx].slot.cancelled_at.map(|(_, c)| c)
            };
            if cause == Some(CancelCause::Deadline) {
                outcome.detail = "wall-clock deadline exceeded (watchdog)".to_string();
                if let Some(last) = outcome.attempts.last_mut() {
                    last.outcome = format!("unknown: {}", outcome.detail);
                }
            }
        }
        if !task.prior.is_empty() {
            let mut merged = task.prior.clone();
            merged.append(&mut outcome.attempts);
            outcome.attempts = merged;
        }
        if !shared.config.keep_going
            && matches!(outcome.kind, OutcomeKind::Invalid | OutcomeKind::Error)
        {
            shared.fail_fast.store(true, Ordering::SeqCst);
        }
        {
            let mut workers = shared.workers.lock().unwrap_or_else(|e| e.into_inner());
            let slot = &mut workers[slot_idx].slot;
            if slot.detached {
                // The watchdog already recorded this task as hung and
                // (possibly) spawned our replacement; our late result must
                // not be double-counted.
                return;
            }
            slot.busy = false;
        }
        if shared.results.send((task.index, outcome)).is_err() {
            return;
        }
    }
}

/// The watchdog main loop: fire deadlines, propagate global cancellation,
/// detach unresponsive workers, keep the pool at strength.
fn watchdog_loop(shared: &Arc<Shared>) {
    let poll = (shared.grace / 4).clamp(Duration::from_millis(1), Duration::from_millis(5));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(poll);
        let now = Instant::now();
        let global = shared.config.cancel.is_cancelled();
        let mut hung: Vec<(usize, TransformOutcome)> = Vec::new();
        let mut replacements = 0usize;
        {
            let mut workers = shared.workers.lock().unwrap_or_else(|e| e.into_inner());
            for entry in workers.iter_mut() {
                let slot = &mut entry.slot;
                if !slot.busy || slot.detached {
                    continue;
                }
                match slot.cancelled_at {
                    None => {
                        let overdue = slot.deadline.is_some_and(|d| now >= d);
                        if global || overdue {
                            slot.token.cancel();
                            let cause = if global {
                                CancelCause::Global
                            } else {
                                CancelCause::Deadline
                            };
                            slot.cancelled_at = Some((now, cause));
                        }
                    }
                    Some((when, cause)) => {
                        if now.duration_since(when) >= shared.grace {
                            slot.detached = true;
                            slot.busy = false;
                            let (name, _) = &shared.transforms[slot.task];
                            let elapsed = now.duration_since(slot.started);
                            let worker_id = slot.worker;
                            shared.config.verify.ef.tracer.mark(
                                "pool.detach",
                                || format!("worker-{worker_id} {name}"),
                                elapsed.as_micros() as u64,
                            );
                            let mut outcome = TransformOutcome::synthetic(
                                name,
                                OutcomeKind::Hung,
                                format!(
                                    "worker {} ignored {} for {:?} past the grace \
                                     period; thread detached",
                                    slot.worker,
                                    match cause {
                                        CancelCause::Global => "cancellation",
                                        CancelCause::Deadline => "its deadline",
                                    },
                                    shared.grace,
                                ),
                            );
                            outcome.wall = now.duration_since(slot.started);
                            outcome.worker = slot.worker;
                            outcome.attempts = slot.prior.clone();
                            outcome.attempts.push(Attempt {
                                wall: now.duration_since(slot.started),
                                conflicts: 0,
                                outcome: "hung".to_string(),
                            });
                            hung.push((slot.task, outcome));
                            replacements += 1;
                        }
                    }
                }
            }
        }
        for (task, outcome) in hung {
            let _ = shared.results.send((task, outcome));
        }
        // Keep the pool at strength — but only if there is still work to
        // pull and the run is not shutting down.
        if replacements > 0 && !global && !shared.shutdown.load(Ordering::SeqCst) {
            let pending = {
                let queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                queue.len()
            };
            for _ in 0..replacements.min(pending) {
                spawn_worker(shared);
            }
        }
    }
}

/// Runs `tasks` over the corpus under a supervised worker pool, merging in
/// `preset` outcomes (verdicts replayed from a `--resume` journal).
///
/// Every live outcome is appended to `journal` (keyed by
/// `journal_keys[index]`) and fsync'd *before* it is counted or shown.
/// `observer` fires for preset outcomes first (in corpus order), then for
/// live outcomes in completion order; the returned report is always in
/// corpus order.
#[allow(clippy::too_many_arguments)]
pub fn run_supervised(
    transforms: &[(String, Transform)],
    tasks: Vec<TaskSpec>,
    preset: Vec<(usize, TransformOutcome)>,
    config: &DriverConfig,
    pool: &PoolConfig,
    mut journal: Option<(&mut Journal, &[String])>,
    mut observer: impl FnMut(usize, &TransformOutcome),
) -> RunReport {
    let total = transforms.len();
    let mut slots: Vec<Option<TransformOutcome>> = vec![None; total];
    let mut report = RunReport::default();

    let mut preset = preset;
    preset.sort_by_key(|(i, _)| *i);
    for (i, outcome) in preset {
        observer(i, &outcome);
        slots[i] = Some(outcome);
    }

    let mut remaining = tasks.len();
    let jobs = pool.jobs.max(1).min(tasks.len().max(1));
    let spawn_span = config.verify.ef.tracer.span("pool.spawn");
    let (tx, rx) = mpsc::channel();
    let shared = Arc::new(Shared {
        transforms: transforms.to_vec(),
        config: config.clone(),
        grace: pool.grace,
        queue: Mutex::new(tasks.into_iter().map(|t| (t, Instant::now())).collect()),
        workers: Mutex::new(Vec::new()),
        results: tx,
        shutdown: AtomicBool::new(false),
        fail_fast: AtomicBool::new(false),
        next_worker_id: AtomicU32::new(0),
    });

    let watchdog = if remaining > 0 {
        for _ in 0..jobs {
            spawn_worker(&shared);
        }
        let shared2 = Arc::clone(&shared);
        Some(
            std::thread::Builder::new()
                .name("alive-watchdog".to_string())
                .spawn(move || watchdog_loop(&shared2))
                .expect("spawn watchdog thread"),
        )
    } else {
        None
    };
    drop(spawn_span);

    let mut stopped_dispatch = false;
    while remaining > 0 {
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok((index, outcome)) => {
                if slots[index].is_some() {
                    continue; // late duplicate after a detach race
                }
                if let Some((journal, keys)) = journal.as_mut() {
                    let _span = config.verify.ef.tracer.span("journal.append");
                    if journal.append(&keys[index], &outcome).is_err() {
                        report.journal_errors += 1;
                    }
                }
                let kind = outcome.kind;
                observer(index, &outcome);
                slots[index] = Some(outcome);
                remaining -= 1;
                if !config.keep_going
                    && matches!(kind, OutcomeKind::Invalid | OutcomeKind::Error)
                    && !stopped_dispatch
                {
                    stopped_dispatch = true;
                    let drained = {
                        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                        let n = queue.len();
                        queue.clear();
                        n
                    };
                    report.skipped += drained;
                    remaining -= drained;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if config.cancel.is_cancelled() {
                    // Workers stop pulling on cancellation; whatever is
                    // still queued will never run.
                    let drained = {
                        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                        let n = queue.len();
                        queue.clear();
                        n
                    };
                    report.skipped += drained;
                    remaining -= drained;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    shared.shutdown.store(true, Ordering::SeqCst);
    if let Some(w) = watchdog {
        let _ = w.join();
    }
    {
        let mut workers = shared.workers.lock().unwrap_or_else(|e| e.into_inner());
        for entry in workers.iter_mut() {
            if entry.slot.detached {
                // Leak the thread: it is stuck in a query that ignores
                // cancellation, and joining it would hang the supervisor
                // the same way. Process exit reclaims it.
                drop(entry.handle.take());
            } else if let Some(h) = entry.handle.take() {
                let _ = h.join();
            }
        }
    }

    report.cancelled = config.cancel.is_cancelled();
    report.outcomes = slots.into_iter().flatten().collect();
    report
}

/// Convenience wrapper: the whole corpus, fresh, no journal.
pub fn run_transforms_parallel(
    transforms: &[(String, Transform)],
    config: &DriverConfig,
    pool: &PoolConfig,
) -> RunReport {
    let tasks = (0..transforms.len()).map(TaskSpec::fresh).collect();
    run_supervised(transforms, tasks, Vec::new(), config, pool, None, |_, _| {})
}
