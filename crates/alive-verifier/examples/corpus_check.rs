//! Scratch driver: verify the whole corpus and report per-entry verdicts.

use alive_verifier::{verify, Verdict, VerifyConfig};
use std::time::Instant;

fn main() {
    let config = VerifyConfig::fast();
    let mut ok = 0;
    let mut bad = 0;
    let mut wrong = 0;
    for e in alive_suite::full_corpus() {
        let start = Instant::now();
        let v = match verify(&e.transform, &config) {
            Ok(v) => v,
            Err(err) => {
                wrong += 1;
                println!("ERROR  {:30} {err}", e.name);
                continue;
            }
        };
        let dt = start.elapsed().as_millis();
        let got_bug = v.is_invalid();
        if got_bug == e.expected_bug {
            ok += 1;
            if std::env::args().any(|a| a == "-v") {
                println!(
                    "ok     {:30} {:>6}ms {}",
                    e.name,
                    dt,
                    if got_bug {
                        "(rejected as expected)"
                    } else {
                        "(valid)"
                    }
                );
            }
        } else {
            bad += 1;
            println!(
                "WRONG  {:30} {:>6}ms expected_bug={} got:",
                e.name, dt, e.expected_bug
            );
            match &v {
                Verdict::Invalid(cex) => println!("{cex}"),
                other => println!("  {other}"),
            }
        }
    }
    println!("\n{ok} as expected, {bad} mismatched, {wrong} errors");
}
