//! Budget (conflicts, propagations, decisions, deadline, cancellation)
//! and statistics behavior.

use alive_sat::{Budget, CancelToken, Exhaustion, SolveResult, Solver, Var};
use proptest::prelude::*;
use std::time::Duration;

/// A hard random-ish 3-SAT-style instance the solver cannot finish within
/// a one-conflict budget.
fn hard_instance(s: &mut Solver, n: usize) -> Vec<Var> {
    let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
    // Pigeonhole: n pigeons, n-1 holes encoded positionally.
    let holes = n - 1;
    let mut p = vec![vec![Var::from_index(0); holes]; n];
    for row in p.iter_mut() {
        for slot in row.iter_mut() {
            *slot = s.new_var();
        }
    }
    for row in &p {
        s.add_clause(row.iter().map(|v| v.positive()));
    }
    for i in 0..n {
        for k in (i + 1)..n {
            for (a, b) in p[i].iter().zip(&p[k]) {
                s.add_clause([a.negative(), b.negative()]);
            }
        }
    }
    vars
}

#[test]
fn budget_exhaustion_returns_unknown() {
    let mut s = Solver::new();
    let _ = hard_instance(&mut s, 8);
    s.set_conflict_budget(Some(1));
    assert_eq!(s.solve(), SolveResult::Unknown);
    // Removing the budget lets the solver finish (unsat).
    s.set_conflict_budget(None);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn stats_accumulate() {
    let mut s = Solver::new();
    let _ = hard_instance(&mut s, 7);
    assert_eq!(s.solve(), SolveResult::Unsat);
    let st = s.stats();
    assert!(st.conflicts > 0);
    assert!(st.decisions > 0);
    assert!(st.propagations > 0);
}

/// A long implication chain seeded with a unit: solved by propagation
/// alone, without a single conflict or decision beyond the chain.
fn propagation_chain(s: &mut Solver, n: usize) -> Vec<Var> {
    let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
    for w in vars.windows(2) {
        s.add_clause([w[0].negative(), w[1].positive()]);
    }
    vars
}

#[test]
fn propagation_budget_trips_without_conflicts() {
    // The satisfiable chain never conflicts, so a conflict budget alone
    // would never fire; the propagation budget must stop it.
    let mut s = Solver::new();
    let vars = propagation_chain(&mut s, 4000);
    s.set_budget(Budget::default().with_propagations(100));
    // Trigger the chain inside the search (not at level 0): decide the head.
    assert_eq!(
        s.solve_with_assumptions(&[vars[0].positive()]),
        SolveResult::Unknown
    );
    assert_eq!(s.exhaustion(), Some(Exhaustion::Propagations));
    assert_eq!(s.stats().conflicts, 0, "chain must not conflict");
    // Lifting the budget completes the same query on the same instance.
    s.set_budget(Budget::default());
    assert_eq!(
        s.solve_with_assumptions(&[vars[0].positive()]),
        SolveResult::Sat
    );
    assert_eq!(s.value(vars[3999]), Some(true));
}

#[test]
fn decision_budget_trips_without_conflicts() {
    let mut s = Solver::new();
    // 64 unconstrained variable pairs: each needs a decision, none conflict.
    for _ in 0..64 {
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.positive(), b.positive()]);
    }
    s.set_budget(Budget::default().with_decisions(5));
    assert_eq!(s.solve(), SolveResult::Unknown);
    assert_eq!(s.exhaustion(), Some(Exhaustion::Decisions));
    s.set_budget(Budget::default());
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.exhaustion(), None);
}

#[test]
fn expired_deadline_preempts_search() {
    let mut s = Solver::new();
    let _ = hard_instance(&mut s, 8);
    s.set_budget(Budget::default().deadline_in(Duration::ZERO));
    assert_eq!(s.solve(), SolveResult::Unknown);
    assert_eq!(s.exhaustion(), Some(Exhaustion::Deadline));
    s.set_budget(Budget::default());
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn cancellation_yields_unknown_and_solver_stays_usable() {
    let token = CancelToken::new();
    let mut s = Solver::new();
    let _ = hard_instance(&mut s, 8);
    s.set_budget(Budget::default().with_cancel(token.clone()));
    token.cancel();
    assert_eq!(s.solve(), SolveResult::Unknown);
    assert_eq!(s.exhaustion(), Some(Exhaustion::Cancelled));
    // A fresh budget clears the cancellation; the instance still decides.
    s.set_budget(Budget::default());
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn raising_the_budget_after_unknown_gives_correct_answers() {
    // Unsat side: pigeonhole exhausts a one-conflict budget, then a raised
    // budget resolves the very same instance.
    let mut s = Solver::new();
    let _ = hard_instance(&mut s, 8);
    s.set_budget(Budget::default().with_conflicts(1));
    assert_eq!(s.solve(), SolveResult::Unknown);
    assert_eq!(s.exhaustion(), Some(Exhaustion::Conflicts));
    s.set_budget(Budget::default().with_conflicts(1_000_000));
    assert_eq!(s.solve(), SolveResult::Unsat);
    assert_eq!(s.exhaustion(), None);

    // Sat side: a conflict-free chain under a propagation budget, retried
    // at a larger budget on the same solver instance.
    let mut s = Solver::new();
    let vars = propagation_chain(&mut s, 3000);
    s.set_budget(Budget::default().with_propagations(50));
    assert_eq!(
        s.solve_with_assumptions(&[vars[0].positive()]),
        SolveResult::Unknown
    );
    s.set_budget(Budget::default().with_propagations(10_000_000));
    assert_eq!(
        s.solve_with_assumptions(&[vars[0].positive()]),
        SolveResult::Sat
    );
    for v in &vars {
        assert_eq!(s.value(*v), Some(true));
    }
}

#[test]
fn solver_is_reusable_after_unknown() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause([a.positive(), b.positive()]);
    s.set_conflict_budget(Some(0));
    // Trivial formula may still solve without conflicts; force budget off
    // afterwards and confirm correctness either way.
    let first = s.solve();
    s.set_conflict_budget(None);
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(matches!(first, SolveResult::Sat | SolveResult::Unknown));
}

// ---------------------------------------------------------------------------
// Property tests: Budget arithmetic and CancelToken visibility. These pin
// the invariants the supervised driver leans on — a watchdog that re-arms
// deadlines per attempt and escalates budgets across retries must never be
// able to build a Budget that panics, silently drops a limit, or misses a
// cancellation raised from another thread.
// ---------------------------------------------------------------------------

proptest! {
    /// `deadline_in` saturates instead of panicking: absurd timeouts
    /// (beyond what `Instant` can represent) degrade to "no deadline",
    /// which only ever makes the budget *more* permissive — the safe
    /// direction for a limit that exists to stop runaway queries.
    #[test]
    fn deadline_in_never_panics_and_saturates(secs in 0u64..=u64::MAX) {
        let b = Budget::default().deadline_in(Duration::from_secs(secs));
        if let Some(d) = b.deadline {
            // A representable deadline is never in the past at build time
            // (modulo the zero-timeout case, where "now" already passed).
            if secs > 0 {
                prop_assert!(d > std::time::Instant::now() - Duration::from_secs(1));
            }
        } else {
            // Saturation: only huge timeouts may lose the deadline, and an
            // hour is comfortably representable on every platform.
            prop_assert!(secs > 3600, "a {secs}s deadline must be representable");
        }
        // Saturated or not, a far-future deadline never trips the soft check.
        if secs > 3600 {
            prop_assert_ne!(b.check_soft(), Some(Exhaustion::Deadline));
        }
    }

    /// Builder composition: each `with_*` setter touches exactly its own
    /// field, order is irrelevant, and the last write to a field wins.
    #[test]
    fn limit_composition_is_order_independent(
        conflicts in proptest::option::of(0u64..1_000_000),
        propagations in proptest::option::of(0u64..1_000_000),
        decisions in proptest::option::of(0u64..1_000_000),
        overwrite in proptest::option::of(0u64..1_000_000),
        order in 0usize..6,
    ) {
        let apply = |mut b: Budget, which: usize| -> Budget {
            match which {
                0 => {
                    if let Some(n) = conflicts {
                        b = b.with_conflicts(n);
                    }
                    b
                }
                1 => {
                    if let Some(n) = propagations {
                        b = b.with_propagations(n);
                    }
                    b
                }
                _ => {
                    if let Some(n) = decisions {
                        b = b.with_decisions(n);
                    }
                    b
                }
            }
        };
        let orders = [
            [0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0],
        ];
        let mut b = Budget::default();
        for &step in &orders[order] {
            b = apply(b, step);
        }
        prop_assert_eq!(b.conflicts, conflicts);
        prop_assert_eq!(b.propagations, propagations);
        prop_assert_eq!(b.decisions, decisions);
        prop_assert!(b.deadline.is_none());
        prop_assert!(b.cancel.is_none());
        // `is_unlimited` is exactly "no field set".
        let any_limit = conflicts.is_some() || propagations.is_some() || decisions.is_some();
        prop_assert_eq!(b.is_unlimited(), !any_limit);
        // Re-applying a setter replaces the old limit wholesale (the
        // driver's retry escalation depends on this, not on min/max).
        if let Some(n) = overwrite {
            let b2 = b.clone().with_conflicts(n);
            prop_assert_eq!(b2.conflicts, Some(n));
            prop_assert_eq!(b2.propagations, propagations);
            prop_assert_eq!(b2.decisions, decisions);
        }
        // Counter limits alone never trip the soft check — counters are
        // the solver's job; check_soft covers only cancel and deadline.
        prop_assert_eq!(b.check_soft(), None);
    }

    /// A cancellation raised on one thread is visible through every clone
    /// of the token on another thread, with no polling deadline to miss:
    /// the flip happens-before the join, so one check suffices.
    #[test]
    fn cancel_token_is_visible_across_threads(clones in 1usize..8) {
        let token = CancelToken::new();
        let budgets: Vec<Budget> = (0..clones)
            .map(|_| Budget::default().with_cancel(token.clone()))
            .collect();
        for b in &budgets {
            prop_assert_eq!(b.check_soft(), None);
        }
        let t = token.clone();
        std::thread::spawn(move || t.cancel())
            .join()
            .expect("cancelling thread panicked");
        prop_assert!(token.is_cancelled());
        for b in &budgets {
            prop_assert_eq!(b.check_soft(), Some(Exhaustion::Cancelled));
        }
    }

    /// Cancellation outranks an expired deadline whenever both apply, and
    /// clearing the budget clears both — the retry loop builds a fresh
    /// Budget per attempt and must start clean.
    #[test]
    fn cancellation_outranks_deadline_under_composition(
        conflicts in proptest::option::of(1u64..1000),
    ) {
        let token = CancelToken::new();
        let mut b = Budget::default()
            .deadline_in(Duration::ZERO)
            .with_cancel(token.clone());
        if let Some(n) = conflicts {
            b = b.with_conflicts(n);
        }
        prop_assert_eq!(b.check_soft(), Some(Exhaustion::Deadline));
        token.cancel();
        prop_assert_eq!(b.check_soft(), Some(Exhaustion::Cancelled));
        prop_assert_eq!(Budget::default().check_soft(), None);
    }
}
