//! Conflict-budget and statistics behavior.

use alive_sat::{SolveResult, Solver, Var};

/// A hard random-ish 3-SAT-style instance the solver cannot finish within
/// a one-conflict budget.
fn hard_instance(s: &mut Solver, n: usize) -> Vec<Var> {
    let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
    // Pigeonhole: n pigeons, n-1 holes encoded positionally.
    let holes = n - 1;
    let mut p = vec![vec![Var::from_index(0); holes]; n];
    for row in p.iter_mut() {
        for slot in row.iter_mut() {
            *slot = s.new_var();
        }
    }
    for row in &p {
        s.add_clause(row.iter().map(|v| v.positive()));
    }
    for i in 0..n {
        for k in (i + 1)..n {
            for (a, b) in p[i].iter().zip(&p[k]) {
                s.add_clause([a.negative(), b.negative()]);
            }
        }
    }
    vars
}

#[test]
fn budget_exhaustion_returns_unknown() {
    let mut s = Solver::new();
    let _ = hard_instance(&mut s, 8);
    s.set_conflict_budget(Some(1));
    assert_eq!(s.solve(), SolveResult::Unknown);
    // Removing the budget lets the solver finish (unsat).
    s.set_conflict_budget(None);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn stats_accumulate() {
    let mut s = Solver::new();
    let _ = hard_instance(&mut s, 7);
    assert_eq!(s.solve(), SolveResult::Unsat);
    let st = s.stats();
    assert!(st.conflicts > 0);
    assert!(st.decisions > 0);
    assert!(st.propagations > 0);
}

#[test]
fn solver_is_reusable_after_unknown() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause([a.positive(), b.positive()]);
    s.set_conflict_budget(Some(0));
    // Trivial formula may still solve without conflicts; force budget off
    // afterwards and confirm correctness either way.
    let first = s.solve();
    s.set_conflict_budget(None);
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(matches!(first, SolveResult::Sat | SolveResult::Unknown));
}
