//! Budget (conflicts, propagations, decisions, deadline, cancellation)
//! and statistics behavior.

use alive_sat::{Budget, CancelToken, Exhaustion, SolveResult, Solver, Var};
use std::time::Duration;

/// A hard random-ish 3-SAT-style instance the solver cannot finish within
/// a one-conflict budget.
fn hard_instance(s: &mut Solver, n: usize) -> Vec<Var> {
    let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
    // Pigeonhole: n pigeons, n-1 holes encoded positionally.
    let holes = n - 1;
    let mut p = vec![vec![Var::from_index(0); holes]; n];
    for row in p.iter_mut() {
        for slot in row.iter_mut() {
            *slot = s.new_var();
        }
    }
    for row in &p {
        s.add_clause(row.iter().map(|v| v.positive()));
    }
    for i in 0..n {
        for k in (i + 1)..n {
            for (a, b) in p[i].iter().zip(&p[k]) {
                s.add_clause([a.negative(), b.negative()]);
            }
        }
    }
    vars
}

#[test]
fn budget_exhaustion_returns_unknown() {
    let mut s = Solver::new();
    let _ = hard_instance(&mut s, 8);
    s.set_conflict_budget(Some(1));
    assert_eq!(s.solve(), SolveResult::Unknown);
    // Removing the budget lets the solver finish (unsat).
    s.set_conflict_budget(None);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn stats_accumulate() {
    let mut s = Solver::new();
    let _ = hard_instance(&mut s, 7);
    assert_eq!(s.solve(), SolveResult::Unsat);
    let st = s.stats();
    assert!(st.conflicts > 0);
    assert!(st.decisions > 0);
    assert!(st.propagations > 0);
}

/// A long implication chain seeded with a unit: solved by propagation
/// alone, without a single conflict or decision beyond the chain.
fn propagation_chain(s: &mut Solver, n: usize) -> Vec<Var> {
    let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
    for w in vars.windows(2) {
        s.add_clause([w[0].negative(), w[1].positive()]);
    }
    vars
}

#[test]
fn propagation_budget_trips_without_conflicts() {
    // The satisfiable chain never conflicts, so a conflict budget alone
    // would never fire; the propagation budget must stop it.
    let mut s = Solver::new();
    let vars = propagation_chain(&mut s, 4000);
    s.set_budget(Budget::default().with_propagations(100));
    // Trigger the chain inside the search (not at level 0): decide the head.
    assert_eq!(
        s.solve_with_assumptions(&[vars[0].positive()]),
        SolveResult::Unknown
    );
    assert_eq!(s.exhaustion(), Some(Exhaustion::Propagations));
    assert_eq!(s.stats().conflicts, 0, "chain must not conflict");
    // Lifting the budget completes the same query on the same instance.
    s.set_budget(Budget::default());
    assert_eq!(
        s.solve_with_assumptions(&[vars[0].positive()]),
        SolveResult::Sat
    );
    assert_eq!(s.value(vars[3999]), Some(true));
}

#[test]
fn decision_budget_trips_without_conflicts() {
    let mut s = Solver::new();
    // 64 unconstrained variable pairs: each needs a decision, none conflict.
    for _ in 0..64 {
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.positive(), b.positive()]);
    }
    s.set_budget(Budget::default().with_decisions(5));
    assert_eq!(s.solve(), SolveResult::Unknown);
    assert_eq!(s.exhaustion(), Some(Exhaustion::Decisions));
    s.set_budget(Budget::default());
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.exhaustion(), None);
}

#[test]
fn expired_deadline_preempts_search() {
    let mut s = Solver::new();
    let _ = hard_instance(&mut s, 8);
    s.set_budget(Budget::default().deadline_in(Duration::ZERO));
    assert_eq!(s.solve(), SolveResult::Unknown);
    assert_eq!(s.exhaustion(), Some(Exhaustion::Deadline));
    s.set_budget(Budget::default());
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn cancellation_yields_unknown_and_solver_stays_usable() {
    let token = CancelToken::new();
    let mut s = Solver::new();
    let _ = hard_instance(&mut s, 8);
    s.set_budget(Budget::default().with_cancel(token.clone()));
    token.cancel();
    assert_eq!(s.solve(), SolveResult::Unknown);
    assert_eq!(s.exhaustion(), Some(Exhaustion::Cancelled));
    // A fresh budget clears the cancellation; the instance still decides.
    s.set_budget(Budget::default());
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn raising_the_budget_after_unknown_gives_correct_answers() {
    // Unsat side: pigeonhole exhausts a one-conflict budget, then a raised
    // budget resolves the very same instance.
    let mut s = Solver::new();
    let _ = hard_instance(&mut s, 8);
    s.set_budget(Budget::default().with_conflicts(1));
    assert_eq!(s.solve(), SolveResult::Unknown);
    assert_eq!(s.exhaustion(), Some(Exhaustion::Conflicts));
    s.set_budget(Budget::default().with_conflicts(1_000_000));
    assert_eq!(s.solve(), SolveResult::Unsat);
    assert_eq!(s.exhaustion(), None);

    // Sat side: a conflict-free chain under a propagation budget, retried
    // at a larger budget on the same solver instance.
    let mut s = Solver::new();
    let vars = propagation_chain(&mut s, 3000);
    s.set_budget(Budget::default().with_propagations(50));
    assert_eq!(
        s.solve_with_assumptions(&[vars[0].positive()]),
        SolveResult::Unknown
    );
    s.set_budget(Budget::default().with_propagations(10_000_000));
    assert_eq!(
        s.solve_with_assumptions(&[vars[0].positive()]),
        SolveResult::Sat
    );
    for v in &vars {
        assert_eq!(s.value(*v), Some(true));
    }
}

#[test]
fn solver_is_reusable_after_unknown() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause([a.positive(), b.positive()]);
    s.set_conflict_budget(Some(0));
    // Trivial formula may still solve without conflicts; force budget off
    // afterwards and confirm correctness either way.
    let first = s.solve();
    s.set_conflict_budget(None);
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(matches!(first, SolveResult::Sat | SolveResult::Unknown));
}
