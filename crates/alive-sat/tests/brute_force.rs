//! Property tests: the CDCL solver must agree with brute-force enumeration
//! on random small CNFs, and models it returns must satisfy the formula.

use alive_sat::{SolveResult, Solver, Var};
use proptest::prelude::*;

/// A CNF over `nvars` variables: clause literals are (var, sign) pairs.
type Cnf = Vec<Vec<(usize, bool)>>;

fn cnf_strategy(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = (usize, Cnf)> {
    (2..=max_vars).prop_flat_map(move |nvars| {
        let clause = proptest::collection::vec((0..nvars, any::<bool>()), 1..=4);
        let clauses = proptest::collection::vec(clause, 0..=max_clauses);
        (Just(nvars), clauses)
    })
}

fn brute_force_sat(nvars: usize, cnf: &Cnf) -> bool {
    for bits in 0u32..(1 << nvars) {
        let ok = cnf.iter().all(|clause| {
            clause
                .iter()
                .any(|&(v, sign)| ((bits >> v) & 1 == 1) == sign)
        });
        if ok {
            return true;
        }
    }
    false
}

fn run_solver(nvars: usize, cnf: &Cnf) -> (SolveResult, Option<Vec<bool>>) {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..nvars).map(|_| s.new_var()).collect();
    for clause in cnf {
        s.add_clause(clause.iter().map(|&(v, sign)| vars[v].lit(sign)));
    }
    let r = s.solve();
    let model = (r == SolveResult::Sat)
        .then(|| vars.iter().map(|&v| s.value(v).unwrap_or(false)).collect());
    (r, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn agrees_with_brute_force((nvars, cnf) in cnf_strategy(8, 24)) {
        let expect = brute_force_sat(nvars, &cnf);
        let (got, model) = run_solver(nvars, &cnf);
        prop_assert_eq!(got, if expect { SolveResult::Sat } else { SolveResult::Unsat });
        if let Some(m) = model {
            for clause in &cnf {
                prop_assert!(clause.iter().any(|&(v, sign)| m[v] == sign),
                    "returned model does not satisfy clause {:?}", clause);
            }
        }
    }

    #[test]
    fn assumptions_agree_with_conditioned_formula(
        (nvars, cnf) in cnf_strategy(6, 16),
        assume_bits in any::<u8>(),
    ) {
        // Assume the first two variables to fixed values; compare against the
        // formula with those units added.
        let a0 = assume_bits & 1 == 1;
        let a1 = assume_bits & 2 == 2;
        let mut conditioned = cnf.clone();
        conditioned.push(vec![(0, a0)]);
        conditioned.push(vec![(1, a1)]);
        let expect = brute_force_sat(nvars, &conditioned);

        let mut s = Solver::new();
        let vars: Vec<Var> = (0..nvars).map(|_| s.new_var()).collect();
        for clause in &cnf {
            s.add_clause(clause.iter().map(|&(v, sign)| vars[v].lit(sign)));
        }
        let r = s.solve_with_assumptions(&[vars[0].lit(a0), vars[1].lit(a1)]);
        prop_assert_eq!(
            r,
            if expect { SolveResult::Sat } else { SolveResult::Unsat }
        );
        // The solver must remain reusable afterwards.
        let unconditioned = brute_force_sat(nvars, &cnf);
        prop_assert_eq!(
            s.solve(),
            if unconditioned { SolveResult::Sat } else { SolveResult::Unsat }
        );
    }
}
