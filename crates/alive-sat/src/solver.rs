//! The CDCL solver.
//!
//! A MiniSat-lineage solver: two-watched-literal propagation, first-UIP
//! conflict analysis with clause minimization, VSIDS branching with phase
//! saving, Luby restarts, and activity-based learned-clause reduction.
//! Solving under assumptions makes the solver incremental, which the SMT
//! layer uses for model enumeration and CEGIS.

use crate::budget::{Budget, Exhaustion};
use crate::clause::{ClauseDb, ClauseRef};
use crate::heap::VarHeap;
use crate::lit::{LBool, Lit, Var};
use crate::proof::{ProofEvent, ProofLogger};
use alive_trace::Tracer;

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The configured [`Budget`] was exhausted (or the solve was cancelled);
    /// [`Solver::exhaustion`] says which limit tripped.
    Unknown,
}

/// Aggregate statistics of a solver's lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses deleted by DB reduction.
    pub deleted_clauses: u64,
    /// Number of learned-clause literals retained after minimization.
    pub learned_literals: u64,
    /// Number of `solve` calls answered (including `Unknown`).
    pub sat_calls: u64,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    /// The *other* watched literal; lets us skip satisfied clauses cheaply.
    blocker: Lit,
}

#[derive(Clone, Copy, Debug)]
struct VarData {
    reason: ClauseRef,
    level: u32,
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use alive_sat::{Solver, SolveResult};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause([a.positive(), b.positive()]);
/// s.add_clause([a.negative()]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert_eq!(s.value(b), Some(true));
/// ```
#[derive(Debug)]
pub struct Solver {
    db: ClauseDb,
    /// Watch lists indexed by literal code: clauses watching `!lit`… by
    /// convention, `watches[l.code()]` are the clauses in which `l` is a
    /// watched literal whose falsification must be handled.
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    vardata: Vec<VarData>,
    /// Saved phase per variable for phase-saving.
    polarity: Vec<bool>,
    activity: Vec<f64>,
    order: VarHeap,
    var_inc: f64,
    cla_inc: f64,

    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    /// Clauses of length 1 asserted at level 0.
    ok: bool,
    stats: SolverStats,
    budget: Budget,
    /// Which limit tripped when the last solve returned `Unknown`.
    exhaustion: Option<Exhaustion>,
    /// Propagation+decision tick at which the deadline/cancel flag is next
    /// polled (amortizes the `Instant::now` syscall and atomic load).
    next_soft_poll: u64,

    // scratch buffers for conflict analysis
    seen: Vec<bool>,
    analyze_toclear: Vec<Lit>,

    /// Final conflict clause (in terms of assumptions) after Unsat-under-assumptions.
    conflict: Vec<Lit>,
    /// Snapshot of the assignment taken when `Sat` is returned.
    model: Vec<LBool>,

    max_learnts: f64,

    /// Optional DRAT-style proof sink; `None` (the default) keeps every
    /// logging site down to one branch, so solving is unaffected.
    proof: Option<Box<dyn ProofLogger>>,

    /// Structured-trace handle; disabled (one branch per site) by default.
    tracer: Tracer,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;
/// Deadline/cancellation are polled every this many propagation+decision
/// ticks: frequent enough that even conflict-free solves respond to SIGINT
/// within milliseconds, rare enough that `Instant::now` stays off the
/// propagation fast path.
const SOFT_POLL_INTERVAL: u64 = 2048;

/// Counter snapshot at solve entry; per-call budgets measure against it.
struct BudgetStart {
    conflicts: u64,
    propagations: u64,
    decisions: u64,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with no variables or clauses.
    pub fn new() -> Solver {
        Solver {
            db: ClauseDb::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            vardata: Vec::new(),
            polarity: Vec::new(),
            activity: Vec::new(),
            order: VarHeap::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            ok: true,
            stats: SolverStats::default(),
            budget: Budget::default(),
            exhaustion: None,
            next_soft_poll: 0,
            seen: Vec::new(),
            analyze_toclear: Vec::new(),
            conflict: Vec::new(),
            model: Vec::new(),
            max_learnts: 1000.0,
            proof: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a structured-trace handle. The disabled tracer (the
    /// default) keeps every emission site down to one branch, mirroring
    /// [`Solver::set_proof_logger`]. While enabled, each solve emits a
    /// `sat.solve` span plus `sat.conflicts`/`sat.propagations`/
    /// `sat.decisions` counter deltas, restarts and DB reductions emit
    /// as they happen, and learned-clause lengths are sampled into the
    /// `sat.learned_len` histogram.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed trace handle (disabled unless [`Solver::set_tracer`]
    /// was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Installs (or removes) a DRAT-style proof logger.
    ///
    /// While a logger is installed, every original clause, learned clause,
    /// and deleted clause is reported as a [`ProofEvent`] in DIMACS literals.
    /// Transcripts of runs that end in [`SolveResult::Unsat`] *without
    /// assumptions* conclude with an empty learned clause and form a complete
    /// refutation; Unsat-under-assumptions answers depend on the assumption
    /// literals and do not produce an empty clause.
    ///
    /// Install the logger before adding clauses — clauses added earlier are
    /// not retroactively recorded.
    pub fn set_proof_logger(&mut self, logger: Option<Box<dyn ProofLogger>>) {
        self.proof = logger;
    }

    /// `true` if a proof logger is currently installed.
    pub fn is_proof_logging(&self) -> bool {
        self.proof.is_some()
    }

    /// Logs one clause event if a logger is installed; free otherwise.
    #[inline]
    fn proof_log(&mut self, make: fn(Vec<i32>) -> ProofEvent, lits: &[Lit]) {
        if let Some(p) = &mut self.proof {
            p.log(make(lits.iter().map(|l| l.to_dimacs()).collect()));
        }
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Limits the number of conflicts a single `solve` may spend.
    ///
    /// `None` (the default) means no limit. When the budget is exhausted
    /// [`Solver::solve`] returns [`SolveResult::Unknown`]. Convenience for
    /// setting only the conflict field of the [`Budget`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.budget.conflicts = budget;
    }

    /// Installs a full resource [`Budget`] (deadline, counters, cancel).
    ///
    /// The deadline and cancellation flag are polled every few thousand
    /// propagations/decisions, so even a conflict-free, propagation-heavy
    /// solve observes them promptly; counter limits are checked exactly.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The currently installed budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Why the most recent solve returned [`SolveResult::Unknown`]
    /// (`None` after a decisive answer).
    pub fn exhaustion(&self) -> Option<Exhaustion> {
        self.exhaustion
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.vardata.push(VarData {
            reason: ClauseRef::UNDEF,
            level: 0,
        });
        self.polarity.push(false);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.seen.push(false);
        self.order.reserve_vars(self.assigns.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Adds a clause; returns `false` if the formula became trivially unsat.
    ///
    /// May be called between `solve` calls (the solver backtracks to level 0
    /// first). Tautologies are silently dropped; duplicate literals are
    /// removed.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        if !self.ok {
            return false;
        }
        self.cancel_until(0);
        let mut c: Vec<Lit> = lits.into_iter().collect();
        c.sort_unstable();
        c.dedup();
        // Record the clause *before* level-0 simplification: the transcript
        // describes the formula as given, and the simplifications below are
        // all RUP consequences of previously recorded clauses.
        self.proof_log(ProofEvent::Original, &c);
        // Drop tautologies and false literals; detect satisfied clauses.
        let mut out = Vec::with_capacity(c.len());
        let mut i = 0;
        while i < c.len() {
            let l = c[i];
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology: contains l and !l (adjacent after sort)
            }
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => out.push(l),
            }
            i += 1;
        }
        match out.len() {
            0 => {
                // Every literal is false at level 0: the empty clause follows
                // by unit propagation over the recorded formula.
                self.proof_log(ProofEvent::Learned, &[]);
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], ClauseRef::UNDEF);
                self.ok = self.propagate().is_none();
                if !self.ok {
                    self.proof_log(ProofEvent::Learned, &[]);
                }
                self.ok
            }
            _ => {
                let cref = self.db.alloc(out, false);
                self.attach_clause(cref);
                true
            }
        }
    }

    fn attach_clause(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let c = self.db.get(cref);
            (c.lits()[0], c.lits()[1])
        };
        self.watches[(!l0).code()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).code()].push(Watcher { cref, blocker: l0 });
    }

    /// The model value of a variable from the most recent `Sat` answer.
    pub fn value(&self, v: Var) -> Option<bool> {
        self.model.get(v.index()).copied().and_then(LBool::to_bool)
    }

    /// The current value of a literal.
    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    /// Model value of a literal after `Sat` (defaulting unassigned to false).
    pub fn lit_model(&self, l: Lit) -> bool {
        match self.value(l.var()) {
            Some(b) => b == l.is_positive(),
            None => !l.is_positive(),
        }
    }

    /// After a `solve` under assumptions returned `Unsat`, the subset of
    /// assumption literals involved in the contradiction (negated).
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict
    }

    #[inline]
    fn level(&self, v: Var) -> u32 {
        self.vardata[v.index()].level
    }

    #[inline]
    fn reason(&self, v: Var) -> ClauseRef {
        self.vardata[v.index()].reason
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        self.assigns[l.var().index()] = LBool::from_bool(l.is_positive());
        self.vardata[l.var().index()] = VarData {
            reason,
            level: self.decision_level(),
        };
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut conflict = None;
            'outer: while i < ws.len() {
                let w = ws[i];
                // Fast path: blocker satisfied.
                if self.lit_value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                {
                    let c = self.db.get_mut(cref);
                    if c.deleted {
                        ws.swap_remove(i);
                        continue;
                    }
                    // Normalize: ensure the false literal (!p) is at slot 1.
                    let lits = c.lits_mut();
                    if lits[0] == !p {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], !p);
                }
                let first = self.db.get(cref).lits()[0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[i] = Watcher {
                        cref,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.db.get(cref).len();
                for k in 2..len {
                    let lk = self.db.get(cref).lits()[k];
                    if self.lit_value(lk) != LBool::False {
                        let c = self.db.get_mut(cref);
                        c.lits_mut().swap(1, k);
                        self.watches[(!lk).code()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'outer;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[i] = Watcher {
                    cref,
                    blocker: first,
                };
                i += 1;
                if self.lit_value(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                } else {
                    self.unchecked_enqueue(first, cref);
                }
            }
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for idx in (lim..self.trail.len()).rev() {
            let l = self.trail[idx];
            let v = l.var();
            self.assigns[v.index()] = LBool::Undef;
            self.polarity[v.index()] = l.is_positive();
            if !self.order.contains(v) {
                self.order.insert(v, &self.activity);
            }
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn var_bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn cla_bump(&mut self, cref: ClauseRef) {
        let c = self.db.get_mut(cref);
        c.activity += self.cla_inc;
        if c.activity > RESCALE_LIMIT {
            self.cla_inc *= 1e-20;
            // rescale lazily during reduce; good enough to rescale now:
            for i in 0..self.db.arena_len() {
                let cl = self.db.get_mut(ClauseRef(i as u32));
                cl.activity *= 1e-20;
            }
        }
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backtrack level).
    /// The asserting literal is placed first in the learnt clause.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot for asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            debug_assert_ne!(confl, ClauseRef::UNDEF);
            self.cla_bump(confl);
            let clen = self.db.get(confl).len();
            let start = if p.is_some() { 1 } else { 0 };
            for k in start..clen {
                let q = self.db.get(confl).lits()[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level(v) > 0 {
                    self.seen[v.index()] = true;
                    self.var_bump(v);
                    if self.level(v) >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to expand from the trail.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pl;
                p = Some(pl);
                break;
            }
            confl = self.reason(pl.var());
            p = Some(pl);
        }
        let _ = p;

        // Conflict-clause minimization (recursive, reason-subsumption).
        self.analyze_toclear = learnt.clone();
        for l in &self.analyze_toclear {
            self.seen[l.var().index()] = true;
        }
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| self.reason(l.var()) == ClauseRef::UNDEF || !self.lit_redundant(l))
            .collect();
        learnt.truncate(1);
        learnt.extend(keep);

        for l in std::mem::take(&mut self.analyze_toclear) {
            self.seen[l.var().index()] = false;
        }
        // Also clear seen flags for any remaining learnt lits (idempotent).
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }

        // Find the backtrack level: the max level among learnt[1..].
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level(learnt[i].var()) > self.level(learnt[max_i].var()) {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level(learnt[1].var())
        };
        (learnt, bt)
    }

    /// Is `l` redundant in the learnt clause (implied by the other lits)?
    fn lit_redundant(&mut self, l: Lit) -> bool {
        let mut stack = vec![l];
        let mut to_unmark: Vec<Var> = Vec::new();
        while let Some(q) = stack.pop() {
            let r = self.reason(q.var());
            if r == ClauseRef::UNDEF {
                for v in to_unmark {
                    self.seen[v.index()] = false;
                }
                return false;
            }
            let clen = self.db.get(r).len();
            for k in 1..clen {
                let p = self.db.get(r).lits()[k];
                let v = p.var();
                if !self.seen[v.index()] && self.level(v) > 0 {
                    if self.reason(v) == ClauseRef::UNDEF {
                        for u in to_unmark {
                            self.seen[u.index()] = false;
                        }
                        return false;
                    }
                    self.seen[v.index()] = true;
                    to_unmark.push(v);
                    stack.push(p);
                }
            }
        }
        // Keep marks: they only help subsume further literals this round, and
        // the marks are recorded for clearing via analyze_toclear additions.
        self.analyze_toclear
            .extend(to_unmark.into_iter().map(|v| v.positive()));
        true
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        loop {
            let v = self.order.pop(&self.activity)?;
            if self.assigns[v.index()] == LBool::Undef {
                self.stats.decisions += 1;
                return Some(v.lit(self.polarity[v.index()]));
            }
        }
    }

    fn reduce_db(&mut self) {
        let mut deleted_this_pass = 0u64;
        let mut learnts = self.db.learnt_refs();
        // Sort ascending by activity: delete the least active half, keeping
        // binary/glue clauses.
        learnts.sort_by(|&a, &b| {
            self.db
                .get(a)
                .activity
                .partial_cmp(&self.db.get(b).activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: Vec<bool> = learnts
            .iter()
            .map(|&cref| {
                let first = self.db.get(cref).lits()[0];
                self.lit_value(first) == LBool::True && self.reason(first.var()) == cref
            })
            .collect();
        let half = learnts.len() / 2;
        for (i, &cref) in learnts.iter().enumerate() {
            if i >= half {
                break;
            }
            let c = self.db.get(cref);
            if c.len() <= 2 || c.lbd <= 3 || locked[i] {
                continue;
            }
            if self.proof.is_some() {
                let lits: Vec<Lit> = self.db.get(cref).lits().to_vec();
                self.proof_log(ProofEvent::Deleted, &lits);
            }
            self.db.free(cref);
            self.stats.deleted_clauses += 1;
            deleted_this_pass += 1;
        }
        self.tracer
            .mark("sat.reduce", String::new, deleted_this_pass);
        // Purge watches of deleted clauses lazily during propagation; also
        // sweep now to keep lists tight.
        for list in &mut self.watches {
            list.retain(|w| !self.db.get(w.cref).deleted);
        }
    }

    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level(l.var())).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// On `Unsat`, [`Solver::unsat_core`] lists the subset of assumptions
    /// (negated) that participated in the contradiction.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        #[cfg(feature = "fault-injection")]
        {
            let injected = crate::fault::fire(crate::fault::FaultSite::Sat);
            match injected {
                Some(crate::fault::FaultKind::ForceUnknown) => {
                    self.exhaustion = Some(Exhaustion::Injected);
                    return SolveResult::Unknown;
                }
                Some(crate::fault::FaultKind::Panic) => {
                    panic!("injected fault: panic in alive_sat::Solver::solve")
                }
                Some(crate::fault::FaultKind::Hang) => {
                    // Simulate a query that never terminates on its own: only
                    // the budget's deadline or cancellation flag can end it.
                    loop {
                        if let Some(e) = self.budget.check_soft() {
                            self.exhaustion = Some(e);
                            return SolveResult::Unknown;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
                Some(crate::fault::FaultKind::HangHard) => {
                    // A query whose thread can only be abandoned: ignores
                    // the budget and the cancel token alike. The supervised
                    // driver's watchdog must detach the worker running it.
                    loop {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
                Some(crate::fault::FaultKind::CorruptModel) => {
                    let r = self.solve_inner(assumptions);
                    if r == SolveResult::Sat {
                        self.corrupt_model();
                    }
                    return r;
                }
                // I/O fault kinds model disk/socket failures; a solver call
                // has no I/O to fail, so they are inert here.
                Some(crate::fault::FaultKind::IoError | crate::fault::FaultKind::TornWrite)
                | None => {}
            }
        }
        self.solve_inner(assumptions)
    }

    /// Flips every assigned value in the stored model — a deliberately
    /// wrong answer used by fault-injection tests to prove downstream
    /// model re-validation catches solver defects. Public so higher
    /// layers (the SMT solver's own fault site) can reuse it.
    #[cfg(feature = "fault-injection")]
    pub fn corrupt_model(&mut self) {
        for v in &mut self.model {
            *v = v.negate();
        }
    }

    fn solve_inner(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.stats.sat_calls += 1;
        if !self.tracer.enabled() {
            return self.solve_loop(assumptions);
        }
        let tracer = self.tracer.clone();
        let _span = tracer.span("sat.solve");
        let before = self.stats;
        let r = self.solve_loop(assumptions);
        tracer.counter("sat.conflicts", self.stats.conflicts - before.conflicts);
        tracer.counter(
            "sat.propagations",
            self.stats.propagations - before.propagations,
        );
        tracer.counter("sat.decisions", self.stats.decisions - before.decisions);
        r
    }

    fn solve_loop(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.conflict.clear();
        self.exhaustion = None;
        if !self.ok {
            return SolveResult::Unsat;
        }
        // Pre-flight: an already-expired deadline or raised cancel flag must
        // not start a search at all.
        if let Some(e) = self.budget.check_soft() {
            self.exhaustion = Some(e);
            return SolveResult::Unknown;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.proof_log(ProofEvent::Learned, &[]);
            self.ok = false;
            return SolveResult::Unsat;
        }

        let budget_start = BudgetStart {
            conflicts: self.stats.conflicts,
            propagations: self.stats.propagations,
            decisions: self.stats.decisions,
        };
        // Force a soft poll within the first interval of work.
        self.next_soft_poll = (self.stats.propagations + self.stats.decisions) + SOFT_POLL_INTERVAL;
        let mut luby_idx = 0u64;
        loop {
            let restart_limit = 100 * luby(luby_idx);
            luby_idx += 1;
            match self.search(assumptions, restart_limit, &budget_start) {
                Some(r) => {
                    self.cancel_until(0);
                    return r;
                }
                None => {
                    self.stats.restarts += 1;
                    self.tracer.counter("sat.restarts", 1);
                    self.cancel_until(0);
                }
            }
        }
    }

    /// Checks every budget dimension against the counters accumulated since
    /// `start`; deadline/cancellation are polled on an amortized tick.
    fn budget_exceeded(&mut self, start: &BudgetStart) -> Option<Exhaustion> {
        if let Some(max) = self.budget.conflicts {
            if self.stats.conflicts - start.conflicts >= max {
                return Some(Exhaustion::Conflicts);
            }
        }
        if let Some(max) = self.budget.propagations {
            if self.stats.propagations - start.propagations >= max {
                return Some(Exhaustion::Propagations);
            }
        }
        if let Some(max) = self.budget.decisions {
            if self.stats.decisions - start.decisions >= max {
                return Some(Exhaustion::Decisions);
            }
        }
        let ticks = self.stats.propagations + self.stats.decisions;
        if ticks >= self.next_soft_poll {
            self.next_soft_poll = ticks + SOFT_POLL_INTERVAL;
            if let Some(e) = self.budget.check_soft() {
                return Some(e);
            }
        }
        None
    }

    /// Runs the CDCL loop until sat/unsat/restart/budget.
    /// `None` means "restart requested".
    fn search(
        &mut self,
        assumptions: &[Lit],
        restart_limit: u64,
        budget_start: &BudgetStart,
    ) -> Option<SolveResult> {
        let mut conflicts_this_run = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_run += 1;
                if self.decision_level() == 0 {
                    // Conflict from level-0 propagation alone: the formula is
                    // unsat and the empty clause is RUP over the transcript.
                    self.proof_log(ProofEvent::Learned, &[]);
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                // Conflict below/at assumption levels: extract the core.
                let (learnt, bt_level) = self.analyze(confl);
                self.stats.learned_literals += learnt.len() as u64;
                self.tracer.sample("sat.learned_len", learnt.len() as u64);
                let assumption_level = self.num_assumption_levels(assumptions);
                if self.decision_level() <= assumption_level {
                    self.conflict = self.analyze_final(confl);
                    return Some(SolveResult::Unsat);
                }
                self.proof_log(ProofEvent::Learned, &learnt);
                self.cancel_until(bt_level);
                let lbd = self.compute_lbd(&learnt);
                if learnt.len() == 1 {
                    if self.lit_value(learnt[0]) == LBool::False {
                        // The learnt unit contradicts the level-0 trail.
                        self.proof_log(ProofEvent::Learned, &[]);
                        self.ok = false;
                        return Some(SolveResult::Unsat);
                    }
                    if self.decision_level() > 0 {
                        self.cancel_until(0);
                    }
                    if self.lit_value(learnt[0]) == LBool::Undef {
                        self.unchecked_enqueue(learnt[0], ClauseRef::UNDEF);
                    }
                } else {
                    let first = learnt[0];
                    let cref = self.db.alloc(learnt, true);
                    self.db.get_mut(cref).lbd = lbd;
                    self.attach_clause(cref);
                    self.cla_bump(cref);
                    self.unchecked_enqueue(first, cref);
                }
                self.var_inc /= VAR_DECAY;
                self.cla_inc /= CLA_DECAY;

                if let Some(e) = self.budget_exceeded(budget_start) {
                    self.exhaustion = Some(e);
                    return Some(SolveResult::Unknown);
                }
                if self.db.num_learnt as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.2;
                }
                if conflicts_this_run >= restart_limit {
                    return None; // restart
                }
            } else {
                // No conflict: a propagation-heavy or decision-heavy solve
                // must still observe counter budgets, the deadline, and the
                // cancellation flag (a satisfiable-but-huge query may never
                // conflict at all).
                if let Some(e) = self.budget_exceeded(budget_start) {
                    self.exhaustion = Some(e);
                    return Some(SolveResult::Unknown);
                }
                // Extend with assumptions, then decide.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already satisfied: create a pseudo level so the
                            // indexing over assumptions advances.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            // Conflicting assumption.
                            self.conflict = self.final_core_for(a);
                            return Some(SolveResult::Unsat);
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, ClauseRef::UNDEF);
                        }
                    }
                } else if let Some(l) = self.pick_branch_lit() {
                    self.trail_lim.push(self.trail.len());
                    self.unchecked_enqueue(l, ClauseRef::UNDEF);
                } else {
                    self.model = self.assigns.clone();
                    return Some(SolveResult::Sat);
                }
            }
        }
    }

    fn num_assumption_levels(&self, assumptions: &[Lit]) -> u32 {
        (assumptions.len() as u32).min(self.decision_level())
    }

    /// Builds an unsat core when a conflict happened within assumption levels.
    fn analyze_final(&mut self, confl: ClauseRef) -> Vec<Lit> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.num_vars()];
        let clen = self.db.get(confl).len();
        let mut queue: Vec<Var> = Vec::new();
        for k in 0..clen {
            let v = self.db.get(confl).lits()[k].var();
            if self.level(v) > 0 {
                seen[v.index()] = true;
                queue.push(v);
            }
        }
        for idx in (0..self.trail.len()).rev() {
            let l = self.trail[idx];
            let v = l.var();
            if !seen[v.index()] {
                continue;
            }
            let r = self.reason(v);
            if r == ClauseRef::UNDEF {
                out.push(!l); // decision/assumption literal
            } else {
                let clen = self.db.get(r).len();
                for k in 1..clen {
                    let w = self.db.get(r).lits()[k].var();
                    if self.level(w) > 0 {
                        seen[w.index()] = true;
                    }
                }
            }
            seen[v.index()] = false;
        }
        out
    }

    /// Core when an assumption was directly falsified by earlier assumptions.
    fn final_core_for(&mut self, a: Lit) -> Vec<Lit> {
        let mut out = vec![!a];
        let mut seen = vec![false; self.num_vars()];
        seen[a.var().index()] = true;
        for idx in (0..self.trail.len()).rev() {
            let l = self.trail[idx];
            let v = l.var();
            if !seen[v.index()] {
                continue;
            }
            let r = self.reason(v);
            if r == ClauseRef::UNDEF {
                if self.level(v) > 0 && l != !a {
                    out.push(!l);
                }
            } else {
                let clen = self.db.get(r).len();
                for k in 1..clen {
                    let w = self.db.get(r).lits()[k].var();
                    if self.level(w) > 0 {
                        seen[w.index()] = true;
                    }
                }
            }
            seen[v.index()] = false;
        }
        out
    }
}

/// The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence that contains index i, and the index within.
    let mut k = 1u32;
    loop {
        if i + 2 == (1u64 << k) {
            return 1u64 << (k - 1);
        }
        if i + 2 < (1u64 << k) {
            i -= (1u64 << (k - 1)) - 1;
            k = 1;
            continue;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expect.len() as u64).map(luby).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn single_unit() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause([a.positive()]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn contradiction_detected() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause([a.positive()]));
        assert!(!s.add_clause([a.negative()]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..10).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause([w[0].negative(), w[1].positive()]);
        }
        s.add_clause([vars[0].positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for v in &vars {
            assert_eq!(s.value(*v), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: var p(i,j) = pigeon i in hole j.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause([row[0].positive(), row[1].positive()]);
        }
        for i in 0..3 {
            for k in (i + 1)..3 {
                for (a, b) in p[i].iter().zip(&p[k]) {
                    s.add_clause([a.negative(), b.negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_are_respected() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.negative(), b.positive()]);
        assert_eq!(s.solve_with_assumptions(&[a.positive()]), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
        // Solver stays reusable; opposite assumption also sat.
        assert_eq!(s.solve_with_assumptions(&[a.negative()]), SolveResult::Sat);
        assert_eq!(s.value(a), Some(false));
    }

    #[test]
    fn unsat_under_assumptions_reports_core() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.negative(), b.negative()]);
        assert_eq!(
            s.solve_with_assumptions(&[a.positive(), b.positive()]),
            SolveResult::Unsat
        );
        assert!(!s.unsat_core().is_empty());
        // Still satisfiable without assumptions.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unsat_core_is_sufficient_for_unsat() {
        // (!a | !b) makes {a, b} contradictory; c and d are irrelevant
        // padding assumptions that must not be required by the core.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let d = s.new_var();
        s.add_clause([a.negative(), b.negative()]);
        s.add_clause([c.positive(), d.positive()]);
        let assumptions = [c.positive(), a.positive(), d.positive(), b.positive()];
        assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Unsat);
        let core: Vec<Lit> = s.unsat_core().to_vec();
        assert!(!core.is_empty());
        // Each core literal is the negation of one of the assumptions.
        for l in &core {
            assert!(
                assumptions.contains(&!*l),
                "core lit {l} not from assumptions"
            );
        }
        // The core alone must reproduce the contradiction.
        let core_assumptions: Vec<Lit> = core.iter().map(|l| !*l).collect();
        assert_eq!(
            s.solve_with_assumptions(&core_assumptions),
            SolveResult::Unsat
        );
        // Dropping any single core literal must make the query satisfiable —
        // i.e. for this formula the core is minimal, not just sufficient.
        for skip in 0..core_assumptions.len() {
            let weakened: Vec<Lit> = core_assumptions
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, l)| *l)
                .collect();
            assert_eq!(s.solve_with_assumptions(&weakened), SolveResult::Sat);
        }
    }

    #[test]
    fn unsat_core_remains_valid_across_incremental_additions() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let e = s.new_var();
        s.add_clause([a.negative(), b.negative()]);
        assert_eq!(
            s.solve_with_assumptions(&[a.positive(), b.positive()]),
            SolveResult::Unsat
        );
        let core_assumptions: Vec<Lit> = s.unsat_core().iter().map(|l| !*l).collect();
        // Clause addition only strengthens the formula, so the old core must
        // still be contradictory after more constraints arrive.
        s.add_clause([e.positive(), a.positive()]);
        s.add_clause([e.negative(), b.positive()]);
        assert_eq!(
            s.solve_with_assumptions(&core_assumptions),
            SolveResult::Unsat
        );
        // And the solver stays usable for satisfiable queries afterwards.
        assert_eq!(s.solve_with_assumptions(&[a.positive()]), SolveResult::Sat);
        assert_eq!(s.value(b), Some(false));
    }

    #[test]
    fn proof_logging_is_off_by_default() {
        let s = Solver::new();
        assert!(!s.is_proof_logging());
    }

    #[test]
    fn proof_transcript_refutes_pigeonhole() {
        use crate::proof::{ProofEvent, SharedDratRecorder};
        let handle = SharedDratRecorder::new();
        let mut s = Solver::new();
        s.set_proof_logger(Some(Box::new(handle.clone())));
        assert!(s.is_proof_logging());
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        let mut num_original = 0usize;
        for row in &p {
            s.add_clause([row[0].positive(), row[1].positive()]);
            num_original += 1;
        }
        for i in 0..3 {
            for k in (i + 1)..3 {
                for (a, b) in p[i].iter().zip(&p[k]) {
                    s.add_clause([a.negative(), b.negative()]);
                    num_original += 1;
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        let events = handle.snapshot();
        assert!(handle.has_refutation());
        let originals = events
            .iter()
            .filter(|e| matches!(e, ProofEvent::Original(_)))
            .count();
        assert_eq!(originals, num_original);
        // Every original clause is recorded in DIMACS with no zeros.
        for e in &events {
            assert!(e.lits().iter().all(|&l| l != 0));
        }
    }

    #[test]
    fn sat_run_produces_no_refutation() {
        use crate::proof::SharedDratRecorder;
        let handle = SharedDratRecorder::new();
        let mut s = Solver::new();
        s.set_proof_logger(Some(Box::new(handle.clone())));
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.positive(), b.positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(!handle.has_refutation());
        assert_eq!(handle.len(), 1); // just the original clause
    }

    #[test]
    fn add_clause_contradiction_logs_empty_clause() {
        use crate::proof::SharedDratRecorder;
        let handle = SharedDratRecorder::new();
        let mut s = Solver::new();
        s.set_proof_logger(Some(Box::new(handle.clone())));
        let a = s.new_var();
        assert!(s.add_clause([a.positive()]));
        assert!(!s.add_clause([a.negative()]));
        assert!(handle.has_refutation());
    }

    #[test]
    fn unsat_under_assumptions_yields_no_refutation() {
        // Assumption-dependent Unsat is not a refutation of the formula, so
        // the transcript must not end with an empty clause.
        use crate::proof::SharedDratRecorder;
        let handle = SharedDratRecorder::new();
        let mut s = Solver::new();
        s.set_proof_logger(Some(Box::new(handle.clone())));
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.negative(), b.negative()]);
        assert_eq!(
            s.solve_with_assumptions(&[a.positive(), b.positive()]),
            SolveResult::Unsat
        );
        assert!(!handle.has_refutation());
        // The formula itself is satisfiable and must stay so.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(!handle.has_refutation());
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.positive(), b.positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([a.negative()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
        s.add_clause([b.negative()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }
}
