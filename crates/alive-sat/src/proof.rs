//! DRAT-style proof logging.
//!
//! When a [`ProofLogger`] is installed via
//! [`Solver::set_proof_logger`](crate::Solver::set_proof_logger), the solver
//! emits one [`ProofEvent`] per original clause, learned clause, and deleted
//! clause, in chronological order. Every learned clause is a reverse unit
//! propagation (RUP) consequence of the clauses recorded before it, so a
//! transcript ending in an empty learned clause is a checkable refutation of
//! the conjunction of the original clauses. The `alive-proof` crate re-checks
//! such transcripts with an independent propagation engine that shares no
//! code with this solver.
//!
//! Literals are recorded in DIMACS convention — `±(var_index + 1)` — so a
//! transcript is meaningful without access to the solver's internal literal
//! encoding. Clause literal order is not significant: database reduction may
//! record a deleted clause with its literals permuted by watched-literal
//! bookkeeping, so checkers must match deletions up to permutation.
//!
//! Logging is designed to cost nothing when disabled: every hook first
//! branches on an `Option` that is `None` by default, and no literal
//! conversion or allocation happens unless a logger is present.

use std::cell::RefCell;
use std::rc::Rc;

/// One step of a solver run, in DIMACS literals.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProofEvent {
    /// A clause of the original formula, recorded as `add_clause` received it
    /// (sorted and deduplicated, but not otherwise simplified — tautologies
    /// and clauses satisfied at level 0 are still recorded, since they are
    /// part of the formula whose unsatisfiability a refutation claims).
    Original(Vec<i32>),
    /// A clause learned by conflict analysis, RUP with respect to all
    /// preceding non-deleted clauses. An empty learned clause concludes a
    /// refutation of the original formula.
    Learned(Vec<i32>),
    /// A learned clause removed by clause-database reduction. Checkers may
    /// drop it from their active set; literal order is unspecified.
    Deleted(Vec<i32>),
}

impl ProofEvent {
    /// The clause payload of this event, whatever its kind.
    pub fn lits(&self) -> &[i32] {
        match self {
            ProofEvent::Original(c) | ProofEvent::Learned(c) | ProofEvent::Deleted(c) => c,
        }
    }

    /// `true` for the empty learned clause that concludes a refutation.
    pub fn is_refutation(&self) -> bool {
        matches!(self, ProofEvent::Learned(c) if c.is_empty())
    }
}

/// Sink for proof events.
///
/// The solver holds the logger as `Option<Box<dyn ProofLogger>>`; when the
/// option is `None` (the default) every logging site reduces to a single
/// predictable branch, so proof support adds no measurable overhead to
/// solving without a logger.
pub trait ProofLogger: std::fmt::Debug {
    /// Records one event. Events arrive in chronological order.
    fn log(&mut self, event: ProofEvent);
}

/// An in-memory [`ProofLogger`] that stores the transcript.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DratRecorder {
    events: Vec<ProofEvent>,
}

impl DratRecorder {
    /// Creates an empty recorder.
    pub fn new() -> DratRecorder {
        DratRecorder::default()
    }

    /// The recorded transcript so far.
    pub fn events(&self) -> &[ProofEvent] {
        &self.events
    }

    /// Removes and returns the transcript, leaving the recorder empty.
    pub fn take_events(&mut self) -> Vec<ProofEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `true` if the transcript contains an empty learned clause, i.e. a
    /// complete refutation of the original clauses.
    pub fn has_refutation(&self) -> bool {
        self.events.iter().any(ProofEvent::is_refutation)
    }
}

impl ProofLogger for DratRecorder {
    fn log(&mut self, event: ProofEvent) {
        self.events.push(event);
    }
}

/// A cloneable handle to a shared [`DratRecorder`].
///
/// [`Solver::set_proof_logger`](crate::Solver::set_proof_logger) takes
/// ownership of its logger, so a caller that wants to read the transcript
/// afterwards installs one clone of this handle and keeps another.
#[derive(Clone, Debug, Default)]
pub struct SharedDratRecorder(Rc<RefCell<DratRecorder>>);

impl SharedDratRecorder {
    /// Creates a handle to a fresh empty recorder.
    pub fn new() -> SharedDratRecorder {
        SharedDratRecorder::default()
    }

    /// Copies out the transcript recorded so far.
    pub fn snapshot(&self) -> Vec<ProofEvent> {
        self.0.borrow().events().to_vec()
    }

    /// Removes and returns the transcript, leaving the recorder empty.
    pub fn take_events(&self) -> Vec<ProofEvent> {
        self.0.borrow_mut().take_events()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    /// `true` if the transcript contains a complete refutation.
    pub fn has_refutation(&self) -> bool {
        self.0.borrow().has_refutation()
    }
}

impl ProofLogger for SharedDratRecorder {
    fn log(&mut self, event: ProofEvent) {
        self.0.borrow_mut().log(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_in_order() {
        let mut r = DratRecorder::new();
        r.log(ProofEvent::Original(vec![1, 2]));
        r.log(ProofEvent::Learned(vec![1]));
        r.log(ProofEvent::Deleted(vec![1, 2]));
        assert_eq!(r.len(), 3);
        assert!(!r.has_refutation());
        r.log(ProofEvent::Learned(vec![]));
        assert!(r.has_refutation());
        let events = r.take_events();
        assert_eq!(events.len(), 4);
        assert!(r.is_empty());
        assert_eq!(events[0].lits(), &[1, 2]);
        assert!(events[3].is_refutation());
    }

    #[test]
    fn shared_recorder_sees_logger_writes() {
        let handle = SharedDratRecorder::new();
        let mut logger = handle.clone();
        logger.log(ProofEvent::Original(vec![-3]));
        assert_eq!(handle.len(), 1);
        assert_eq!(handle.snapshot(), vec![ProofEvent::Original(vec![-3])]);
    }
}
