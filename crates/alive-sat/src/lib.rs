//! A CDCL SAT solver.
//!
//! This crate is the decision-procedure substrate of the `alive-rs`
//! reproduction of *Provably Correct Peephole Optimizations with Alive*
//! (PLDI 2015). The paper uses the Z3 SMT solver; since that is not
//! available here, the SMT stack is built from scratch, and this crate
//! provides the propositional core: a MiniSat-lineage conflict-driven
//! clause-learning solver with
//!
//! * two-watched-literal unit propagation,
//! * first-UIP conflict analysis with recursive clause minimization,
//! * VSIDS branching with phase saving,
//! * Luby-sequence restarts,
//! * activity-based learned-clause database reduction,
//! * incremental solving under assumptions with unsat-core extraction, and
//! * a resource governor ([`Budget`]/[`CancelToken`]) polled throughout the
//!   search loop, so deadlines, counter limits, and cooperative
//!   cancellation all degrade a solve to [`SolveResult::Unknown`] (with the
//!   cause in [`Solver::exhaustion`]) instead of running away.
//!
//! With the `fault-injection` feature the [`fault`] module adds
//! deterministic failure hooks used by resilience tests.
//!
//! # Examples
//!
//! ```
//! use alive_sat::{Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var();
//! let y = solver.new_var();
//! // (x | y) & (!x | y) & (x | !y)  =>  x = y = true
//! solver.add_clause([x.positive(), y.positive()]);
//! solver.add_clause([x.negative(), y.positive()]);
//! solver.add_clause([x.positive(), y.negative()]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.value(x), Some(true));
//! assert_eq!(solver.value(y), Some(true));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod budget;
mod clause;
#[cfg(feature = "fault-injection")]
pub mod fault;
mod heap;
mod lit;
mod proof;
mod solver;

pub use budget::{Budget, CancelToken, Exhaustion};
pub use clause::{Clause, ClauseDb, ClauseRef};
pub use lit::{LBool, Lit, Var};
pub use proof::{DratRecorder, ProofEvent, ProofLogger, SharedDratRecorder};
pub use solver::{SolveResult, Solver, SolverStats};

// Re-exported so callers can install a tracer without depending on
// `alive-trace` directly (mirrors how `Budget` travels with the solver).
pub use alive_trace::Tracer;
