//! Variables, literals, and the three-valued assignment lattice.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a dense index.
///
/// Variables are created by [`Solver::new_var`](crate::Solver::new_var) and
/// are valid only for the solver that created them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Returns the dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a variable from a raw index.
    ///
    /// Callers must ensure the index is in range for the solver it is used
    /// with; out-of-range variables cause panics inside the solver.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// The literal of this variable with the given sign.
    ///
    /// `sign == true` yields the positive literal.
    #[inline]
    pub fn lit(self, sign: bool) -> Lit {
        if sign {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `2 * var + (negated as usize)` so that a literal and its
/// negation are adjacent, which makes watch lists cache friendly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The variable underlying this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is a positive (non-negated) literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns the dense code of this literal (`2*var + neg`).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// The DIMACS representation of this literal: `±(index + 1)`.
    ///
    /// Proof transcripts use this convention so they are meaningful without
    /// access to the solver's internal encoding.
    #[inline]
    pub fn to_dimacs(self) -> i32 {
        let magnitude = (self.0 >> 1) as i32 + 1;
        if self.is_positive() {
            magnitude
        } else {
            -magnitude
        }
    }

    /// Reconstructs a literal from its DIMACS representation.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`, which DIMACS reserves as a clause terminator.
    #[inline]
    pub fn from_dimacs(d: i32) -> Lit {
        assert_ne!(d, 0, "0 is the DIMACS clause terminator, not a literal");
        let var = Var(d.unsigned_abs() - 1);
        var.lit(d > 0)
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.var().0)
        } else {
            write!(f, "!v{}", self.var().0)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A lifted boolean: true, false, or unassigned.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts a concrete boolean.
    #[inline]
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// `true` if assigned (either polarity).
    #[inline]
    pub fn is_assigned(self) -> bool {
        !matches!(self, LBool::Undef)
    }

    /// Negation; `Undef` stays `Undef`.
    #[inline]
    pub fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }

    /// Converts to `Option<bool>`.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var::from_index(7);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(v.positive().is_positive());
        assert!(!v.negative().is_positive());
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(!!v.positive(), v.positive());
        assert_eq!(Lit::from_code(v.positive().code()), v.positive());
    }

    #[test]
    fn dimacs_round_trips() {
        let v = Var::from_index(4);
        assert_eq!(v.positive().to_dimacs(), 5);
        assert_eq!(v.negative().to_dimacs(), -5);
        assert_eq!(Lit::from_dimacs(5), v.positive());
        assert_eq!(Lit::from_dimacs(-5), v.negative());
        assert_eq!(Var::from_index(0).positive().to_dimacs(), 1);
    }

    #[test]
    #[should_panic]
    fn dimacs_zero_rejected() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn lit_sign_constructor() {
        let v = Var::from_index(3);
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
    }

    #[test]
    fn lbool_lattice() {
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::from_bool(false), LBool::False);
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::True.to_bool(), Some(true));
        assert_eq!(LBool::Undef.to_bool(), None);
        assert!(LBool::False.is_assigned());
        assert!(!LBool::Undef.is_assigned());
    }
}
