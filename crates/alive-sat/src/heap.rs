//! Binary max-heap over variables keyed by VSIDS activity.

use crate::lit::Var;

/// A max-heap of variables ordered by an external activity array.
///
/// Supports `decrease`-free usage: activities only grow (until a global
/// rescale, which preserves order), so we only ever need `increase`
/// (sift up) and pop.
#[derive(Debug, Default)]
pub struct VarHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    indices: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    /// Creates an empty heap.
    pub fn new() -> VarHeap {
        VarHeap::default()
    }

    /// Grows the index table to cover `n` variables.
    pub fn reserve_vars(&mut self, n: usize) {
        if self.indices.len() < n {
            self.indices.resize(n, ABSENT);
        }
    }

    /// Is `v` currently in the heap?
    pub fn contains(&self, v: Var) -> bool {
        self.indices.get(v.index()).is_some_and(|&i| i != ABSENT)
    }

    /// Inserts `v` if absent.
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        self.reserve_vars(v.index() + 1);
        if self.contains(v) {
            return;
        }
        let i = self.heap.len();
        self.heap.push(v);
        self.indices[v.index()] = i;
        self.sift_up(i, activity);
    }

    /// Restores heap order after `v`'s activity increased.
    pub fn update(&mut self, v: Var, activity: &[f64]) {
        if let Some(&i) = self.indices.get(v.index()) {
            if i != ABSENT {
                self.sift_up(i, activity);
            }
        }
    }

    /// Removes and returns the variable with maximal activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.indices[top.index()] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.indices[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].index()] <= activity[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l].index()] > activity[self.heap[best].index()]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r].index()] > activity[self.heap[best].index()]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.indices[self.heap[i].index()] = i;
        self.indices[self.heap[j].index()] = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = VarHeap::new();
        for i in 0..4 {
            h.insert(Var::from_index(i), &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop(&activity))
            .map(|v| v.index())
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let activity = vec![1.0, 2.0];
        let mut h = VarHeap::new();
        h.insert(Var::from_index(0), &activity);
        h.insert(Var::from_index(0), &activity);
        assert_eq!(h.pop(&activity), Some(Var::from_index(0)));
        assert_eq!(h.pop(&activity), None);
    }

    #[test]
    fn update_reorders_after_bump() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        for i in 0..3 {
            h.insert(Var::from_index(i), &activity);
        }
        activity[0] = 10.0;
        h.update(Var::from_index(0), &activity);
        assert_eq!(h.pop(&activity), Some(Var::from_index(0)));
    }
}
