//! Deterministic fault injection for resilience testing.
//!
//! Compiled only with the `fault-injection` cargo feature. A process-wide
//! [`FailurePlan`] lists faults to fire at the Nth query reaching a given
//! [`FaultSite`]; the solver layers call [`fire`] at their query entry
//! points and act on the returned [`FaultKind`]. Counters are plain atomics,
//! so a plan is exactly reproducible for a fixed workload — the integration
//! tests rely on this to prove the verification driver survives panics,
//! hangs, forced Unknowns, and corrupted models without lying about any
//! healthy query.
//!
//! Plans are written `site:kind@n` (1-based), comma-separated:
//! `sat:panic@3,sat:hang@7`. Sites are `sat` (every
//! `Solver::solve_with_assumptions`), `smt` (every `SmtSolver` check),
//! `store` (every verdict-store append), and `serve` (every daemon
//! verify/batch request). Kinds are `unknown`, `panic`, `hang`,
//! `hang-hard`, `corrupt-model`, `io-error`, and `torn` — the last two
//! model disk/socket failures and only make sense at the `store`/`serve`
//! sites, where the handlers map them to a failed or half-completed
//! write.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What the injected fault does at its trigger point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Return `Unknown` as if a resource limit had tripped.
    ForceUnknown,
    /// Panic, exercising the caller's isolation boundary.
    Panic,
    /// Spin until the active budget's deadline or cancellation fires,
    /// simulating a query that would never terminate on its own.
    Hang,
    /// Spin forever, ignoring the budget *and* the cancel token — a query
    /// whose thread can only be abandoned. Exercises the supervised
    /// driver's watchdog detach path; in sequential runs this fault hangs
    /// the process (that is the point).
    HangHard,
    /// Solve normally, then flip every model value of a `Sat` answer,
    /// exercising the verifier's concrete model re-validation.
    CorruptModel,
    /// Fail an I/O operation cleanly (nothing written), simulating a full
    /// disk on a store append or a broken pipe on a response write.
    IoError,
    /// Complete an I/O operation *partially* — half a record hits the file
    /// or socket, then the error fires — simulating a torn write the way
    /// `kill -9` mid-append produces one.
    TornWrite,
}

/// Which layer's query counter a fault is keyed to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultSite {
    /// `alive-sat`: one count per `solve`/`solve_with_assumptions` call.
    Sat,
    /// `alive-smt`: one count per `check`/`check_assuming` call.
    Smt,
    /// `alive-verifier::store`: one count per verdict-store append.
    Store,
    /// `alive-serve`: one count per daemon `verify`/`batch` request.
    Serve,
}

/// One scheduled fault: fire `kind` at the `at`-th (1-based) query
/// reaching `site`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fault {
    /// The hook the fault is keyed to.
    pub site: FaultSite,
    /// The behavior to inject.
    pub kind: FaultKind,
    /// 1-based query ordinal at `site`.
    pub at: u64,
}

/// A deterministic schedule of faults for one run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FailurePlan {
    /// The scheduled faults. Multiple faults may target the same site.
    pub faults: Vec<Fault>,
}

impl FailurePlan {
    /// Parses a comma-separated `site:kind@n` spec.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed specs.
    pub fn parse(spec: &str) -> Result<FailurePlan, String> {
        let mut faults = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (site_s, rest) = part
                .split_once(':')
                .ok_or_else(|| format!("fault '{part}': expected site:kind@n"))?;
            let (kind_s, at_s) = rest
                .split_once('@')
                .ok_or_else(|| format!("fault '{part}': expected site:kind@n"))?;
            let site = match site_s {
                "sat" => FaultSite::Sat,
                "smt" => FaultSite::Smt,
                "store" => FaultSite::Store,
                "serve" => FaultSite::Serve,
                other => return Err(format!("fault '{part}': unknown site '{other}'")),
            };
            let kind = match kind_s {
                "unknown" => FaultKind::ForceUnknown,
                "panic" => FaultKind::Panic,
                "hang" => FaultKind::Hang,
                "hang-hard" => FaultKind::HangHard,
                "corrupt-model" => FaultKind::CorruptModel,
                "io-error" => FaultKind::IoError,
                "torn" => FaultKind::TornWrite,
                other => return Err(format!("fault '{part}': unknown kind '{other}'")),
            };
            let at: u64 = at_s
                .parse()
                .map_err(|_| format!("fault '{part}': bad ordinal '{at_s}'"))?;
            if at == 0 {
                return Err(format!("fault '{part}': ordinals are 1-based"));
            }
            faults.push(Fault { site, kind, at });
        }
        if faults.is_empty() {
            return Err("empty fault plan".to_string());
        }
        Ok(FailurePlan { faults })
    }
}

static PLAN: Mutex<Option<FailurePlan>> = Mutex::new(None);
static SAT_QUERIES: AtomicU64 = AtomicU64::new(0);
static SMT_QUERIES: AtomicU64 = AtomicU64::new(0);
static STORE_QUERIES: AtomicU64 = AtomicU64::new(0);
static SERVE_QUERIES: AtomicU64 = AtomicU64::new(0);

/// Installs a plan (or clears it with `None`) and resets every query
/// counter. The plan is process-global; concurrent tests sharing one
/// process must serialize around it.
pub fn install(plan: Option<FailurePlan>) {
    let mut slot = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    SAT_QUERIES.store(0, Ordering::SeqCst);
    SMT_QUERIES.store(0, Ordering::SeqCst);
    STORE_QUERIES.store(0, Ordering::SeqCst);
    SERVE_QUERIES.store(0, Ordering::SeqCst);
    *slot = plan;
}

/// Counts one query at `site` and returns the fault scheduled for that
/// ordinal, if any. Called by the solver layers; cheap when no plan is
/// installed beyond one mutex lock per query.
pub fn fire(site: FaultSite) -> Option<FaultKind> {
    let slot = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    let plan = slot.as_ref()?;
    let counter = match site {
        FaultSite::Sat => &SAT_QUERIES,
        FaultSite::Smt => &SMT_QUERIES,
        FaultSite::Store => &STORE_QUERIES,
        FaultSite::Serve => &SERVE_QUERIES,
    };
    let ordinal = counter.fetch_add(1, Ordering::SeqCst) + 1;
    plan.faults
        .iter()
        .find(|f| f.site == site && f.at == ordinal)
        .map(|f| f.kind)
}

/// Number of queries counted at `site` since the last [`install`].
pub fn queries_seen(site: FaultSite) -> u64 {
    match site {
        FaultSite::Sat => SAT_QUERIES.load(Ordering::SeqCst),
        FaultSite::Smt => SMT_QUERIES.load(Ordering::SeqCst),
        FaultSite::Store => STORE_QUERIES.load(Ordering::SeqCst),
        FaultSite::Serve => SERVE_QUERIES.load(Ordering::SeqCst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_sites_and_kinds_parse() {
        let plan = FailurePlan::parse("store:io-error@1,store:torn@2,serve:hang@3").unwrap();
        assert_eq!(
            plan.faults,
            vec![
                Fault {
                    site: FaultSite::Store,
                    kind: FaultKind::IoError,
                    at: 1
                },
                Fault {
                    site: FaultSite::Store,
                    kind: FaultKind::TornWrite,
                    at: 2
                },
                Fault {
                    site: FaultSite::Serve,
                    kind: FaultKind::Hang,
                    at: 3
                },
            ]
        );
    }

    #[test]
    fn plan_parsing_round_trips() {
        let plan = FailurePlan::parse("sat:panic@3, smt:corrupt-model@1,sat:hang@9").unwrap();
        assert_eq!(
            plan.faults,
            vec![
                Fault {
                    site: FaultSite::Sat,
                    kind: FaultKind::Panic,
                    at: 3
                },
                Fault {
                    site: FaultSite::Smt,
                    kind: FaultKind::CorruptModel,
                    at: 1
                },
                Fault {
                    site: FaultSite::Sat,
                    kind: FaultKind::Hang,
                    at: 9
                },
            ]
        );
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            "",
            "panic@3",
            "sat:panic",
            "sat:oops@1",
            "sat:panic@0",
            "disk:panic@1",
        ] {
            assert!(FailurePlan::parse(bad).is_err(), "{bad}");
        }
    }
}
