//! Resource governance for the solver stack.
//!
//! A [`Budget`] bundles every resource limit a long-running query can be
//! held to: a wall-clock deadline, counters for conflicts, propagations and
//! decisions, and a cooperative [`CancelToken`]. One budget value is shared
//! across a whole verification query — the deadline is an *absolute*
//! instant, so cloning the budget into several SAT calls (as the CEGIS loop
//! does) still enforces a single overall time limit rather than restarting
//! the clock per call.
//!
//! The CDCL search loop, the bit-blaster, and the CEGIS driver all poll the
//! budget; when it trips they report *why* via [`Exhaustion`].

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag shared between a driver and its solvers.
///
/// Cloning the token shares the underlying flag: cancelling any clone
/// cancels them all. Cancellation is observed at the solver's next budget
/// poll (a few thousand propagations at most), never mid-assignment, so a
/// cancelled solver is left in a reusable state.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; safe to call from any thread (and from
    /// a signal-watcher thread).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has [`CancelToken::cancel`] been called on any clone?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a solve gave up without an answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Exhaustion {
    /// The wall-clock deadline passed.
    Deadline,
    /// The conflict budget was spent.
    Conflicts,
    /// The propagation budget was spent.
    Propagations,
    /// The decision budget was spent.
    Decisions,
    /// The [`CancelToken`] was raised.
    Cancelled,
    /// A deterministic fault-injection hook forced the answer (only ever
    /// produced by builds with the `fault-injection` feature).
    Injected,
}

impl Exhaustion {
    /// `true` for causes that a retry at a larger budget might resolve
    /// (deadline and counter exhaustion), `false` for cancellation and
    /// injected faults.
    pub fn is_retryable(self) -> bool {
        !matches!(self, Exhaustion::Cancelled | Exhaustion::Injected)
    }
}

impl fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Exhaustion::Deadline => "wall-clock deadline exceeded",
            Exhaustion::Conflicts => "conflict budget exhausted",
            Exhaustion::Propagations => "propagation budget exhausted",
            Exhaustion::Decisions => "decision budget exhausted",
            Exhaustion::Cancelled => "cancelled",
            Exhaustion::Injected => "injected fault",
        })
    }
}

/// A resource budget for one query (or one family of related queries).
///
/// The default budget is unlimited. Counter limits (`conflicts`,
/// `propagations`, `decisions`) apply per solve call; `deadline` and
/// `cancel` are absolute and therefore shared by every call holding a
/// clone of the budget.
///
/// # Examples
///
/// ```
/// use alive_sat::{Budget, CancelToken};
/// use std::time::Duration;
///
/// let token = CancelToken::new();
/// let b = Budget::default()
///     .deadline_in(Duration::from_secs(5))
///     .with_conflicts(100_000)
///     .with_cancel(token.clone());
/// assert!(b.check_soft().is_none());
/// token.cancel();
/// assert!(b.check_soft().is_some());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Maximum conflicts per solve call.
    pub conflicts: Option<u64>,
    /// Maximum propagations per solve call.
    pub propagations: Option<u64>,
    /// Maximum decisions per solve call.
    pub decisions: Option<u64>,
    /// Cooperative cancellation flag.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// An unlimited budget (same as `Budget::default()`).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Sets the deadline to `timeout` from now.
    #[must_use]
    pub fn deadline_in(mut self, timeout: Duration) -> Budget {
        self.deadline = Instant::now().checked_add(timeout);
        self
    }

    /// Sets the per-call conflict limit.
    #[must_use]
    pub fn with_conflicts(mut self, n: u64) -> Budget {
        self.conflicts = Some(n);
        self
    }

    /// Sets the per-call propagation limit.
    #[must_use]
    pub fn with_propagations(mut self, n: u64) -> Budget {
        self.propagations = Some(n);
        self
    }

    /// Sets the per-call decision limit.
    #[must_use]
    pub fn with_decisions(mut self, n: u64) -> Budget {
        self.decisions = Some(n);
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// `true` if no limit of any kind is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.conflicts.is_none()
            && self.propagations.is_none()
            && self.decisions.is_none()
            && self.cancel.is_none()
    }

    /// Checks the limits that do not need solver counters: cancellation
    /// first (it is the cheaper read and the more urgent signal), then the
    /// deadline. Counter limits are the solver's job.
    pub fn check_soft(&self) -> Option<Exhaustion> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(Exhaustion::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(Exhaustion::Deadline);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        let b = Budget::default();
        assert!(b.is_unlimited());
        assert_eq!(b.check_soft(), None);
    }

    #[test]
    fn expired_deadline_trips_soft_check() {
        let b = Budget::default().deadline_in(Duration::ZERO);
        assert_eq!(b.check_soft(), Some(Exhaustion::Deadline));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let token = CancelToken::new();
        let b = Budget::default().with_cancel(token.clone());
        let b2 = b.clone();
        assert_eq!(b2.check_soft(), None);
        token.cancel();
        assert_eq!(b.check_soft(), Some(Exhaustion::Cancelled));
        assert_eq!(b2.check_soft(), Some(Exhaustion::Cancelled));
    }

    #[test]
    fn cancellation_outranks_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let b = Budget::default()
            .deadline_in(Duration::ZERO)
            .with_cancel(token);
        assert_eq!(b.check_soft(), Some(Exhaustion::Cancelled));
    }

    #[test]
    fn retryability_classification() {
        assert!(Exhaustion::Deadline.is_retryable());
        assert!(Exhaustion::Conflicts.is_retryable());
        assert!(Exhaustion::Propagations.is_retryable());
        assert!(Exhaustion::Decisions.is_retryable());
        assert!(!Exhaustion::Cancelled.is_retryable());
        assert!(!Exhaustion::Injected.is_retryable());
    }
}
