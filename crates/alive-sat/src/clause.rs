//! Clause storage.
//!
//! Clauses live in a single arena (`ClauseDb`) and are referenced by
//! [`ClauseRef`] indices. Each clause carries an activity (for learned-clause
//! reduction), an LBD score, and a `learnt` flag.

use crate::lit::Lit;

/// Index of a clause in the [`ClauseDb`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    /// A sentinel that never names a real clause (used for "no reason").
    pub const UNDEF: ClauseRef = ClauseRef(u32::MAX);
}

/// A single clause: a disjunction of literals plus solver metadata.
#[derive(Debug)]
pub struct Clause {
    lits: Vec<Lit>,
    /// Activity used for learned-clause garbage collection.
    pub activity: f64,
    /// Literal-block-distance (glue) of a learned clause.
    pub lbd: u32,
    /// Whether the clause was learned (eligible for deletion).
    pub learnt: bool,
    /// Tombstone flag set when the clause has been removed.
    pub deleted: bool,
}

impl Clause {
    fn new(lits: Vec<Lit>, learnt: bool) -> Clause {
        Clause {
            lits,
            activity: 0.0,
            lbd: 0,
            learnt,
            deleted: false,
        }
    }

    /// The literals of the clause. The first two are the watched literals.
    #[inline]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Mutable access for watch maintenance (literal reordering only).
    #[inline]
    pub(crate) fn lits_mut(&mut self) -> &mut [Lit] {
        &mut self.lits
    }

    /// Number of literals.
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// `true` when the clause has no literals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }
}

/// Arena of clauses.
#[derive(Debug, Default)]
pub struct ClauseDb {
    clauses: Vec<Clause>,
    /// Number of non-deleted learnt clauses.
    pub num_learnt: usize,
    /// Number of non-deleted problem clauses.
    pub num_problem: usize,
}

impl ClauseDb {
    /// Creates an empty database.
    pub fn new() -> ClauseDb {
        ClauseDb::default()
    }

    /// Allocates a clause and returns its reference.
    pub fn alloc(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses are not stored");
        let idx = self.clauses.len() as u32;
        self.clauses.push(Clause::new(lits, learnt));
        if learnt {
            self.num_learnt += 1;
        } else {
            self.num_problem += 1;
        }
        ClauseRef(idx)
    }

    /// Marks a clause deleted. Watches must be purged separately.
    pub fn free(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.0 as usize];
        debug_assert!(!c.deleted);
        c.deleted = true;
        if c.learnt {
            self.num_learnt -= 1;
        } else {
            self.num_problem -= 1;
        }
        c.lits.clear();
        c.lits.shrink_to_fit();
    }

    /// Borrows a clause.
    #[inline]
    pub fn get(&self, cref: ClauseRef) -> &Clause {
        &self.clauses[cref.0 as usize]
    }

    /// Mutably borrows a clause.
    #[inline]
    pub fn get_mut(&mut self, cref: ClauseRef) -> &mut Clause {
        &mut self.clauses[cref.0 as usize]
    }

    /// Iterates over the references of all live learnt clauses.
    pub fn learnt_refs(&self) -> Vec<ClauseRef> {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
            .collect()
    }

    /// Total number of slots (live and dead) in the arena.
    pub fn arena_len(&self) -> usize {
        self.clauses.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(n: usize) -> Vec<Lit> {
        (0..n).map(|i| Var::from_index(i).positive()).collect()
    }

    #[test]
    fn alloc_and_free_bookkeeping() {
        let mut db = ClauseDb::new();
        let a = db.alloc(lits(3), false);
        let b = db.alloc(lits(2), true);
        assert_eq!(db.num_problem, 1);
        assert_eq!(db.num_learnt, 1);
        assert_eq!(db.get(a).len(), 3);
        db.free(b);
        assert_eq!(db.num_learnt, 0);
        assert!(db.get(b).deleted);
        assert_eq!(db.learnt_refs().len(), 0);
    }

    #[test]
    fn learnt_refs_lists_live_learnts() {
        let mut db = ClauseDb::new();
        let _ = db.alloc(lits(2), false);
        let l1 = db.alloc(lits(2), true);
        let l2 = db.alloc(lits(4), true);
        assert_eq!(db.learnt_refs(), vec![l1, l2]);
    }
}
