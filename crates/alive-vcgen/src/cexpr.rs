//! Encoding of Alive constant expressions and precondition predicates into
//! SMT terms (paper §3.1.1).

use alive_ir::ast::{CBinop, CExpr, CExprArg, CUnop, Pred, PredArg, PredCmpOp};
use alive_smt::{BvVal, Sort, TermId, TermPool};
use std::collections::HashMap;
use std::fmt;

/// Errors during VC generation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EncodeError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "encoding error: {}", self.message)
    }
}

impl std::error::Error for EncodeError {}

pub(crate) fn eerr(message: impl Into<String>) -> EncodeError {
    EncodeError {
        message: message.into(),
    }
}

/// Name resolution context for constant expressions and predicates.
pub struct NameEnv<'a> {
    /// Abstract constant symbol -> SMT variable.
    pub consts: &'a HashMap<String, TermId>,
    /// Register -> value term (inputs and defined temporaries).
    pub regs: &'a HashMap<String, TermId>,
    /// Register -> bitwidth (for `width(%x)`).
    pub reg_widths: &'a HashMap<String, u32>,
}

impl fmt::Debug for NameEnv<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NameEnv({} consts, {} regs)",
            self.consts.len(),
            self.regs.len()
        )
    }
}

/// Encodes a constant expression at a given bitwidth.
///
/// # Errors
///
/// Fails on unknown symbols or unknown constant functions.
pub fn encode_cexpr(
    pool: &mut TermPool,
    e: &CExpr,
    width: u32,
    env: &NameEnv<'_>,
) -> Result<TermId, EncodeError> {
    match e {
        CExpr::Lit(n) => Ok(pool.bv_const(BvVal::from_i128(width, *n))),
        CExpr::Sym(s) => env
            .consts
            .get(s)
            .copied()
            .ok_or_else(|| eerr(format!("unknown constant symbol {s}"))),
        CExpr::Unop(op, a) => {
            let av = encode_cexpr(pool, a, width, env)?;
            Ok(match op {
                CUnop::Neg => pool.bv_neg(av),
                CUnop::Not => pool.bv_not(av),
            })
        }
        CExpr::Binop(op, a, b) => {
            let av = encode_cexpr(pool, a, width, env)?;
            let bv = encode_cexpr(pool, b, width, env)?;
            Ok(match op {
                CBinop::Add => pool.bv_add(av, bv),
                CBinop::Sub => pool.bv_sub(av, bv),
                CBinop::Mul => pool.bv_mul(av, bv),
                CBinop::SDiv => pool.bv_sdiv(av, bv),
                CBinop::UDiv => pool.bv_udiv(av, bv),
                CBinop::SRem => pool.bv_srem(av, bv),
                CBinop::URem => pool.bv_urem(av, bv),
                CBinop::Shl => pool.bv_shl(av, bv),
                CBinop::LShr => pool.bv_lshr(av, bv),
                CBinop::AShr => pool.bv_ashr(av, bv),
                CBinop::And => pool.bv_and(av, bv),
                CBinop::Or => pool.bv_or(av, bv),
                CBinop::Xor => pool.bv_xor(av, bv),
            })
        }
        CExpr::Fun(name, args) => encode_cfun(pool, name, args, width, env),
    }
}

fn expr_arg<'e>(args: &'e [CExprArg], i: usize, fun: &str) -> Result<&'e CExpr, EncodeError> {
    match args.get(i) {
        Some(CExprArg::Expr(e)) => Ok(e),
        Some(CExprArg::Reg(r)) => Err(eerr(format!(
            "{fun}: argument {i} must be a constant expression, found %{r}"
        ))),
        None => Err(eerr(format!("{fun}: missing argument {i}"))),
    }
}

fn encode_cfun(
    pool: &mut TermPool,
    name: &str,
    args: &[CExprArg],
    width: u32,
    env: &NameEnv<'_>,
) -> Result<TermId, EncodeError> {
    match name {
        "log2" => {
            let v = encode_cexpr(pool, expr_arg(args, 0, name)?, width, env)?;
            Ok(log2_term(pool, v))
        }
        "abs" => {
            let v = encode_cexpr(pool, expr_arg(args, 0, name)?, width, env)?;
            let zero = pool.bv(width, 0);
            let neg = pool.bv_neg(v);
            let is_neg = pool.bv_slt(v, zero);
            Ok(pool.ite(is_neg, neg, v))
        }
        "umax" | "smax" | "umin" | "smin" | "max" | "min" => {
            let a = encode_cexpr(pool, expr_arg(args, 0, name)?, width, env)?;
            let b = encode_cexpr(pool, expr_arg(args, 1, name)?, width, env)?;
            let cmp = match name {
                "umax" => pool.bv_ugt(a, b),
                "smax" | "max" => pool.bv_sgt(a, b),
                "umin" => pool.bv_ult(a, b),
                "smin" | "min" => pool.bv_slt(a, b),
                _ => unreachable!(),
            };
            Ok(pool.ite(cmp, a, b))
        }
        "width" => {
            // width(%x): the bitwidth of %x as a constant of the ambient type.
            match args.first() {
                Some(CExprArg::Reg(r)) => {
                    let w = env
                        .reg_widths
                        .get(r)
                        .copied()
                        .ok_or_else(|| eerr(format!("width(%{r}): unknown register")))?;
                    Ok(pool.bv(width, w as u128))
                }
                _ => Err(eerr("width() requires a register argument")),
            }
        }
        "cttz" => {
            let v = encode_cexpr(pool, expr_arg(args, 0, name)?, width, env)?;
            Ok(cttz_term(pool, v))
        }
        "ctlz" => {
            let v = encode_cexpr(pool, expr_arg(args, 0, name)?, width, env)?;
            Ok(ctlz_term(pool, v))
        }
        other => Err(eerr(format!("unknown constant function {other}()"))),
    }
}

/// Floor-log2 of a bitvector as a nested-ite term (0 for input 0).
pub fn log2_term(pool: &mut TermPool, v: TermId) -> TermId {
    let w = pool.width(v);
    let mut acc = pool.bv(w, 0);
    // From LSB to MSB so the highest set bit wins.
    for i in 0..w {
        let bit = pool.extract(v, i, i);
        let one1 = pool.bv(1, 1);
        let set = pool.eq(bit, one1);
        let k = pool.bv(w, i as u128);
        acc = pool.ite(set, k, acc);
    }
    acc
}

/// Count-trailing-zeros term (width for input 0).
pub fn cttz_term(pool: &mut TermPool, v: TermId) -> TermId {
    let w = pool.width(v);
    let mut acc = pool.bv(w, w as u128);
    for i in (0..w).rev() {
        let bit = pool.extract(v, i, i);
        let one1 = pool.bv(1, 1);
        let set = pool.eq(bit, one1);
        let k = pool.bv(w, i as u128);
        acc = pool.ite(set, k, acc);
    }
    acc
}

/// Count-leading-zeros term (width for input 0).
pub fn ctlz_term(pool: &mut TermPool, v: TermId) -> TermId {
    let w = pool.width(v);
    let mut acc = pool.bv(w, w as u128);
    for i in 0..w {
        let bit = pool.extract(v, i, i);
        let one1 = pool.bv(1, 1);
        let set = pool.eq(bit, one1);
        let k = pool.bv(w, (w - 1 - i) as u128);
        acc = pool.ite(set, k, acc);
    }
    acc
}

/// Result of encoding a precondition.
#[derive(Debug)]
pub struct EncodedPred {
    /// The precondition formula φ (including side constraints for
    /// approximated analyses).
    pub formula: TermId,
    /// Fresh boolean variables P introduced for approximated analyses.
    pub aux_vars: Vec<TermId>,
}

/// Encodes a precondition (paper §3.1.1).
///
/// Predicates over compile-time constants are encoded precisely; predicates
/// over registers model must-analyses: a fresh boolean `p` with the side
/// constraint `p ⇒ s` is conjoined, and `p` replaces the predicate.
///
/// # Errors
///
/// Fails on unknown predicates or malformed arguments.
pub fn encode_pred(
    pool: &mut TermPool,
    p: &Pred,
    width_hint: impl Fn(&Pred) -> u32 + Copy,
    env: &NameEnv<'_>,
) -> Result<EncodedPred, EncodeError> {
    let mut aux = Vec::new();
    let inner = encode_pred_inner(pool, p, width_hint, env, &mut aux)?;
    // Side constraints are top-level conjuncts of φ: nesting them inside the
    // predicate position would be wrong under negation (`!pred(...)`).
    let mut formula = inner;
    for (_, side) in &aux {
        formula = pool.and2(formula, *side);
    }
    Ok(EncodedPred {
        formula,
        aux_vars: aux.into_iter().map(|(p, _)| p).collect(),
    })
}

fn encode_pred_inner(
    pool: &mut TermPool,
    p: &Pred,
    width_hint: impl Fn(&Pred) -> u32 + Copy,
    env: &NameEnv<'_>,
    aux: &mut Vec<(TermId, TermId)>,
) -> Result<TermId, EncodeError> {
    match p {
        Pred::True => Ok(pool.tru()),
        Pred::Not(a) => {
            let av = encode_pred_inner(pool, a, width_hint, env, aux)?;
            Ok(pool.not(av))
        }
        Pred::And(a, b) => {
            let av = encode_pred_inner(pool, a, width_hint, env, aux)?;
            let bv = encode_pred_inner(pool, b, width_hint, env, aux)?;
            Ok(pool.and2(av, bv))
        }
        Pred::Or(a, b) => {
            let av = encode_pred_inner(pool, a, width_hint, env, aux)?;
            let bv = encode_pred_inner(pool, b, width_hint, env, aux)?;
            Ok(pool.or2(av, bv))
        }
        Pred::Cmp(op, a, b) => {
            let w = width_hint(p);
            let av = encode_cexpr(pool, a, w, env)?;
            let bv = encode_cexpr(pool, b, w, env)?;
            Ok(match op {
                PredCmpOp::Eq => pool.eq(av, bv),
                PredCmpOp::Ne => pool.ne(av, bv),
                PredCmpOp::Slt => pool.bv_slt(av, bv),
                PredCmpOp::Sle => pool.bv_sle(av, bv),
                PredCmpOp::Sgt => pool.bv_sgt(av, bv),
                PredCmpOp::Sge => pool.bv_sge(av, bv),
                PredCmpOp::Ult => pool.bv_ult(av, bv),
                PredCmpOp::Ule => pool.bv_ule(av, bv),
                PredCmpOp::Ugt => pool.bv_ugt(av, bv),
                PredCmpOp::Uge => pool.bv_uge(av, bv),
            })
        }
        Pred::Fun(name, args) => encode_pred_fun(pool, p, name, args, width_hint, env, aux),
    }
}

/// Is the predicate argument list free of register arguments (i.e. fully
/// compile-time, so the analysis is precise — paper §3.1.1)?
fn args_are_constant(args: &[PredArg]) -> bool {
    args.iter().all(|a| matches!(a, PredArg::Expr(_)))
}

fn arg_value(
    pool: &mut TermPool,
    args: &[PredArg],
    i: usize,
    width: u32,
    env: &NameEnv<'_>,
    fun: &str,
) -> Result<TermId, EncodeError> {
    match args.get(i) {
        Some(PredArg::Reg(r)) => env
            .regs
            .get(r)
            .copied()
            .ok_or_else(|| eerr(format!("{fun}: unknown register %{r}"))),
        Some(PredArg::Expr(e)) => encode_cexpr(pool, e, width, env),
        None => Err(eerr(format!("{fun}: missing argument {i}"))),
    }
}

fn arg_width(args: &[PredArg], env: &NameEnv<'_>, pool: &TermPool) -> Option<u32> {
    for a in args {
        match a {
            PredArg::Reg(r) => {
                if let Some(w) = env.reg_widths.get(r) {
                    return Some(*w);
                }
            }
            PredArg::Expr(e) => {
                for s in e.symbols() {
                    if let Some(&t) = env.consts.get(s) {
                        return Some(pool.width(t));
                    }
                }
            }
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn encode_pred_fun(
    pool: &mut TermPool,
    whole: &Pred,
    name: &str,
    args: &[PredArg],
    width_hint: impl Fn(&Pred) -> u32 + Copy,
    env: &NameEnv<'_>,
    aux: &mut Vec<(TermId, TermId)>,
) -> Result<TermId, EncodeError> {
    let w = arg_width(args, env, pool).unwrap_or_else(|| width_hint(whole));
    let precise = |pool: &mut TermPool| -> Result<TermId, EncodeError> {
        match name {
            "isPowerOf2" => {
                let v = arg_value(pool, args, 0, w, env, name)?;
                Ok(is_power_of_two_term(pool, v, false))
            }
            "isPowerOf2OrZero" => {
                let v = arg_value(pool, args, 0, w, env, name)?;
                Ok(is_power_of_two_term(pool, v, true))
            }
            "isSignBit" => {
                let v = arg_value(pool, args, 0, w, env, name)?;
                let vw = pool.width(v);
                let min = pool.bv_const(BvVal::int_min(vw));
                Ok(pool.eq(v, min))
            }
            "isShiftedMask" => {
                let v = arg_value(pool, args, 0, w, env, name)?;
                let vw = pool.width(v);
                let zero = pool.bv(vw, 0);
                let nonzero = pool.ne(v, zero);
                // v | (v-1) fills the low zeros; adding 1 must give a power
                // of two or wrap to zero for a contiguous mask.
                let one = pool.bv(vw, 1);
                let vm1 = pool.bv_sub(v, one);
                let filled = pool.bv_or(v, vm1);
                let succ = pool.bv_add(filled, one);
                let and = pool.bv_and(succ, filled);
                let contiguous = pool.eq(and, zero);
                Ok(pool.and2(nonzero, contiguous))
            }
            "MaskedValueIsZero" => {
                let v = arg_value(pool, args, 0, w, env, name)?;
                let mask = arg_value(pool, args, 1, w, env, name)?;
                let and = pool.bv_and(v, mask);
                let vw = pool.width(v);
                let zero = pool.bv(vw, 0);
                Ok(pool.eq(and, zero))
            }
            "WillNotOverflowSignedAdd" => {
                let a = arg_value(pool, args, 0, w, env, name)?;
                let b = arg_value(pool, args, 1, w, env, name)?;
                Ok(crate::semantics::flag_poison_free(
                    pool,
                    alive_ir::BinOp::Add,
                    alive_ir::Flag::Nsw,
                    a,
                    b,
                ))
            }
            "WillNotOverflowUnsignedAdd" => {
                let a = arg_value(pool, args, 0, w, env, name)?;
                let b = arg_value(pool, args, 1, w, env, name)?;
                Ok(crate::semantics::flag_poison_free(
                    pool,
                    alive_ir::BinOp::Add,
                    alive_ir::Flag::Nuw,
                    a,
                    b,
                ))
            }
            "WillNotOverflowSignedSub" => {
                let a = arg_value(pool, args, 0, w, env, name)?;
                let b = arg_value(pool, args, 1, w, env, name)?;
                Ok(crate::semantics::flag_poison_free(
                    pool,
                    alive_ir::BinOp::Sub,
                    alive_ir::Flag::Nsw,
                    a,
                    b,
                ))
            }
            "WillNotOverflowUnsignedSub" => {
                let a = arg_value(pool, args, 0, w, env, name)?;
                let b = arg_value(pool, args, 1, w, env, name)?;
                Ok(crate::semantics::flag_poison_free(
                    pool,
                    alive_ir::BinOp::Sub,
                    alive_ir::Flag::Nuw,
                    a,
                    b,
                ))
            }
            "WillNotOverflowSignedMul" => {
                let a = arg_value(pool, args, 0, w, env, name)?;
                let b = arg_value(pool, args, 1, w, env, name)?;
                Ok(crate::semantics::flag_poison_free(
                    pool,
                    alive_ir::BinOp::Mul,
                    alive_ir::Flag::Nsw,
                    a,
                    b,
                ))
            }
            "WillNotOverflowUnsignedMul" => {
                let a = arg_value(pool, args, 0, w, env, name)?;
                let b = arg_value(pool, args, 1, w, env, name)?;
                Ok(crate::semantics::flag_poison_free(
                    pool,
                    alive_ir::BinOp::Mul,
                    alive_ir::Flag::Nuw,
                    a,
                    b,
                ))
            }
            "isKnownNonZero" | "CannotBeZero" => {
                let v = arg_value(pool, args, 0, w, env, name)?;
                let vw = pool.width(v);
                let zero = pool.bv(vw, 0);
                Ok(pool.ne(v, zero))
            }
            "isNonNegative" => {
                let v = arg_value(pool, args, 0, w, env, name)?;
                let vw = pool.width(v);
                let zero = pool.bv(vw, 0);
                Ok(pool.bv_sge(v, zero))
            }
            // Code-generation-only predicates: no semantic content for
            // verification (they restrict when the rewrite *fires*, not
            // whether it is correct).
            "hasOneUse" | "hasNoUse" => Ok(pool.tru()),
            other => Err(eerr(format!("unknown predicate {other}()"))),
        }
    };
    let s = precise(pool)?;
    // hasOneUse-style predicates stay `true`.
    if pool.as_bool_const(s) == Some(true) {
        return Ok(s);
    }
    if args_are_constant(args) {
        // Compile-time constants: precise encoding.
        Ok(s)
    } else {
        // Must-analysis over runtime values: fresh p with side constraint
        // p ⇒ s; the predicate position becomes just p (paper §3.1.1).
        let p = pool.var(format!("analysis.{name}"), Sort::Bool);
        let side = pool.implies(p, s);
        aux.push((p, side));
        Ok(p)
    }
}

/// `v != 0 && (v & (v-1)) == 0`, optionally allowing zero.
pub fn is_power_of_two_term(pool: &mut TermPool, v: TermId, allow_zero: bool) -> TermId {
    let w = pool.width(v);
    let zero = pool.bv(w, 0);
    let one = pool.bv(w, 1);
    let vm1 = pool.bv_sub(v, one);
    let and = pool.bv_and(v, vm1);
    let no_straggler = pool.eq(and, zero);
    if allow_zero {
        no_straggler
    } else {
        let nz = pool.ne(v, zero);
        pool.and2(nz, no_straggler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_ir::parse_transform;
    use alive_smt::{eval, Assignment, Value};

    fn empty_env() -> (
        HashMap<String, TermId>,
        HashMap<String, TermId>,
        HashMap<String, u32>,
    ) {
        (HashMap::new(), HashMap::new(), HashMap::new())
    }

    #[test]
    fn encodes_arithmetic_cexpr() {
        let mut pool = TermPool::new();
        let mut consts = HashMap::new();
        let c1 = pool.var("C1", Sort::BitVec(8));
        consts.insert("C1".to_string(), c1);
        let (_, regs, widths) = empty_env();
        let env = NameEnv {
            consts: &consts,
            regs: &regs,
            reg_widths: &widths,
        };
        // C1*2 + 1
        let e = CExpr::Binop(
            CBinop::Add,
            Box::new(CExpr::Binop(
                CBinop::Mul,
                Box::new(CExpr::Sym("C1".into())),
                Box::new(CExpr::Lit(2)),
            )),
            Box::new(CExpr::Lit(1)),
        );
        let t = encode_cexpr(&mut pool, &e, 8, &env).unwrap();
        let mut a = Assignment::new();
        a.set(c1, BvVal::new(8, 5));
        assert_eq!(eval(&pool, t, &a).unwrap(), Value::Bv(BvVal::new(8, 11)));
    }

    #[test]
    fn log2_term_is_floor_log2() {
        let mut pool = TermPool::new();
        let v = pool.var("v", Sort::BitVec(8));
        let l = log2_term(&mut pool, v);
        for (input, expect) in [(1u128, 0u128), (2, 1), (3, 1), (64, 6), (255, 7), (0, 0)] {
            let mut a = Assignment::new();
            a.set(v, BvVal::new(8, input));
            assert_eq!(
                eval(&pool, l, &a).unwrap(),
                Value::Bv(BvVal::new(8, expect)),
                "log2({input})"
            );
        }
    }

    #[test]
    fn cttz_ctlz_terms() {
        let mut pool = TermPool::new();
        let v = pool.var("v", Sort::BitVec(8));
        let tz = cttz_term(&mut pool, v);
        let lz = ctlz_term(&mut pool, v);
        for (input, etz, elz) in [
            (0b1000u128, 3u128, 4u128),
            (1, 0, 7),
            (0, 8, 8),
            (0x80, 7, 0),
        ] {
            let mut a = Assignment::new();
            a.set(v, BvVal::new(8, input));
            assert_eq!(eval(&pool, tz, &a).unwrap(), Value::Bv(BvVal::new(8, etz)));
            assert_eq!(eval(&pool, lz, &a).unwrap(), Value::Bv(BvVal::new(8, elz)));
        }
    }

    #[test]
    fn precise_predicate_over_constants() {
        let t = parse_transform("Pre: isPowerOf2(C1)\n%r = mul %x, C1\n=>\n%r = shl %x, log2(C1)")
            .unwrap();
        let mut pool = TermPool::new();
        let mut consts = HashMap::new();
        let c1 = pool.var("C1", Sort::BitVec(8));
        consts.insert("C1".to_string(), c1);
        let (_, regs, widths) = empty_env();
        let env = NameEnv {
            consts: &consts,
            regs: &regs,
            reg_widths: &widths,
        };
        let enc = encode_pred(&mut pool, &t.pre, |_| 8, &env).unwrap();
        assert!(enc.aux_vars.is_empty(), "constants are precise");
        let mut a = Assignment::new();
        a.set(c1, BvVal::new(8, 16));
        assert_eq!(eval(&pool, enc.formula, &a).unwrap(), Value::Bool(true));
        a.set(c1, BvVal::new(8, 12));
        assert_eq!(eval(&pool, enc.formula, &a).unwrap(), Value::Bool(false));
        a.set(c1, BvVal::new(8, 0));
        assert_eq!(eval(&pool, enc.formula, &a).unwrap(), Value::Bool(false));
    }

    #[test]
    fn register_predicate_gets_aux_var() {
        let t = parse_transform(
            "Pre: MaskedValueIsZero(%V, ~C1)\n%t0 = or %B, %V\n%R = and %t0, C1\n=>\n%R = and %t0, C1",
        )
        .unwrap();
        let mut pool = TermPool::new();
        let mut consts = HashMap::new();
        let c1 = pool.var("C1", Sort::BitVec(8));
        consts.insert("C1".to_string(), c1);
        let mut regs = HashMap::new();
        let v = pool.var("V", Sort::BitVec(8));
        regs.insert("V".to_string(), v);
        let mut widths = HashMap::new();
        widths.insert("V".to_string(), 8);
        let env = NameEnv {
            consts: &consts,
            regs: &regs,
            reg_widths: &widths,
        };
        let enc = encode_pred(&mut pool, &t.pre, |_| 8, &env).unwrap();
        assert_eq!(enc.aux_vars.len(), 1, "approximated analysis: one p var");
    }

    #[test]
    fn has_one_use_is_verification_neutral() {
        let mut pool = TermPool::new();
        let (consts, regs, widths) = empty_env();
        let env = NameEnv {
            consts: &consts,
            regs: &regs,
            reg_widths: &widths,
        };
        let p = Pred::Fun("hasOneUse".into(), vec![PredArg::Reg("Y".into())]);
        let enc = encode_pred(&mut pool, &p, |_| 8, &env).unwrap();
        assert_eq!(pool.as_bool_const(enc.formula), Some(true));
    }

    #[test]
    fn unknown_predicate_is_an_error() {
        let mut pool = TermPool::new();
        let (consts, regs, widths) = empty_env();
        let env = NameEnv {
            consts: &consts,
            regs: &regs,
            reg_widths: &widths,
        };
        let p = Pred::Fun("totallyMadeUp".into(), vec![]);
        assert!(encode_pred(&mut pool, &p, |_| 8, &env).is_err());
    }

    #[test]
    fn is_shifted_mask() {
        let mut pool = TermPool::new();
        let v = pool.var("v", Sort::BitVec(8));
        let t = is_shifted_mask_probe(&mut pool, v);
        for (input, expect) in [
            (0b0011_1000u128, true),
            (0b1111_1111, true),
            (0b0000_0001, true),
            (0b0101_0000, false),
            (0, false),
            (0b1000_0001, false),
        ] {
            let mut a = Assignment::new();
            a.set(v, BvVal::new(8, input));
            assert_eq!(
                eval(&pool, t, &a).unwrap(),
                Value::Bool(expect),
                "isShiftedMask({input:#010b})"
            );
        }
    }

    fn is_shifted_mask_probe(pool: &mut TermPool, v: TermId) -> TermId {
        let consts = HashMap::new();
        let mut regs = HashMap::new();
        regs.insert("v".to_string(), v);
        let mut widths = HashMap::new();
        widths.insert("v".to_string(), 8);
        let env = NameEnv {
            consts: &consts,
            regs: &regs,
            reg_widths: &widths,
        };
        let p = Pred::Fun("isShiftedMask".into(), vec![PredArg::Reg("v".into())]);
        let enc = encode_pred(pool, &p, |_| 8, &env).unwrap();
        // Strip the must-analysis wrapper: evaluate s directly by taking the
        // side constraint's consequent. For the test we instead re-encode
        // with a constant-only argument; simplest is to extract via formula
        // evaluation with p forced true. Here we exploit that formula =
        // and(p, p => s): when p is true it evaluates to s.
        let mut a = Assignment::new();
        a.set(enc.aux_vars[0], true);
        let _ = a;
        // Return a term equivalent to s by substituting p := true.
        alive_smt::substitute_assignment(pool, enc.formula, &{
            let mut asn = Assignment::new();
            asn.set(enc.aux_vars[0], true);
            asn
        })
    }
}
