//! Encoding of a whole Alive transformation into SMT terms.
//!
//! For a fixed type assignment, each template (source and target) is
//! translated instruction by instruction into three expressions per value
//! (paper §3.1.1):
//!
//! * ι — the result value,
//! * δ — the aggregated definedness constraint (Table 1, flowed along
//!   def-use chains and across memory sequence points),
//! * ρ — the aggregated poison-freedom constraint (Table 2).
//!
//! `undef` operands become fresh variables collected into the template's
//! `U` set. Memory uses the paper's §3.3.3 eager encoding: stores build an
//! ite-chain and loads fold it; reads of the initial memory are
//! Ackermannized against a registry shared by both templates.

use crate::cexpr::{eerr, encode_cexpr, encode_pred, EncodeError, NameEnv};
use crate::semantics::{binop_defined, binop_value, bool_to_bv1, bv1_to_bool, flag_poison_free};
use alive_ir::ast::{ConvOp, Inst, Operand, Stmt};
use alive_ir::Transform;
use alive_smt::{Sort, TermId, TermPool};
use alive_typeck::{ConcreteType, Key, TypeAssignment};
use std::collections::HashMap;

/// A pending byte store in the eager memory encoding.
#[derive(Clone, Debug)]
pub struct StoreEntry {
    /// Byte address.
    pub addr: TermId,
    /// The 8-bit value stored.
    pub byte: TermId,
    /// Store only happens if this guard holds (definedness so far).
    pub guard: TermId,
}

/// Registry of Ackermannized reads of the initial memory `m0`, shared
/// between source and target so both observe the same initial heap.
#[derive(Debug, Default)]
pub struct BaseMemory {
    reads: Vec<(TermId, TermId)>,
    /// Functional-consistency constraints `a_i = a_j ⇒ v_i = v_j`.
    pub constraints: Vec<TermId>,
}

impl BaseMemory {
    /// The byte of initial memory at `addr` (cached per syntactic address).
    pub fn read(&mut self, pool: &mut TermPool, addr: TermId) -> TermId {
        if let Some(&(_, v)) = self.reads.iter().find(|(a, _)| *a == addr) {
            return v;
        }
        let v = pool.var(format!("m0[{}]", self.reads.len()), Sort::BitVec(8));
        for (a2, v2) in self.reads.clone() {
            let same_addr = pool.eq(addr, a2);
            let same_val = pool.eq(v, v2);
            self.constraints.push(pool.implies(same_addr, same_val));
        }
        self.reads.push((addr, v));
        v
    }
}

/// Memory state of one template during encoding.
#[derive(Clone, Debug, Default)]
pub struct MemState {
    /// Byte stores in program order (oldest first).
    pub stores: Vec<StoreEntry>,
    /// Whether the template contains any memory-accessing instruction.
    pub has_ops: bool,
    /// Definedness accumulated across side-effecting sequence points.
    pub sequence_def: Option<TermId>,
}

impl MemState {
    /// Reads the byte at `addr` through the store chain down to `m0`.
    pub fn read_byte(&self, pool: &mut TermPool, base: &mut BaseMemory, addr: TermId) -> TermId {
        let mut val = base.read(pool, addr);
        for entry in &self.stores {
            let same = pool.eq(addr, entry.addr);
            let hit = pool.and2(same, entry.guard);
            val = pool.ite(hit, entry.byte, val);
        }
        val
    }
}

/// Per-value encoding results for one template.
#[derive(Debug, Default)]
pub struct TemplateEnc {
    /// ι: value of each defined register.
    pub values: HashMap<String, TermId>,
    /// δ: aggregated definedness per register.
    pub defined: HashMap<String, TermId>,
    /// ρ: aggregated poison-freedom per register.
    pub poison_free: HashMap<String, TermId>,
    /// The template's `undef` variables (paper's U / Ū sets).
    pub undefs: Vec<TermId>,
    /// Memory state after the template runs.
    pub memory: MemState,
    /// α: allocation constraints (non-null, aligned, disjoint, no wrap).
    pub alloca_constraints: Vec<TermId>,
    /// Pointers returned by allocas with their sizes in bytes (for
    /// no-alias constraints and for exempting dead stack memory from the
    /// final-memory comparison).
    pub alloca_regions: Vec<(TermId, u64)>,
}

/// The complete encoding of a transformation at one type assignment.
#[derive(Debug)]
pub struct TransformEnc {
    /// Source template encoding.
    pub src: TemplateEnc,
    /// Target template encoding.
    pub tgt: TemplateEnc,
    /// Input register variables (paper's I, together with `consts`).
    pub inputs: HashMap<String, TermId>,
    /// Abstract constant variables.
    pub consts: HashMap<String, TermId>,
    /// φ: the precondition formula including analysis side constraints.
    pub pre: TermId,
    /// P: fresh booleans for approximated analyses.
    pub pre_aux: Vec<TermId>,
    /// Functional-consistency constraints for initial-memory reads; must be
    /// assumed in every query involving memory.
    pub mem_consistency: Vec<TermId>,
    /// The root register name.
    pub root: String,
    /// Pointer width of the type assignment (bits).
    pub ptr_width: u32,
}

impl TransformEnc {
    /// All existential variables of the negated verification conditions:
    /// inputs, constants, and analysis booleans (target undefs are added by
    /// the caller).
    pub fn exist_vars(&self) -> Vec<TermId> {
        let mut v: Vec<TermId> = self.inputs.values().copied().collect();
        v.extend(self.consts.values().copied());
        v.extend(self.pre_aux.iter().copied());
        v
    }

    /// ψ ≡ φ ∧ δ ∧ ρ for the root of the source template (paper §3.1.2),
    /// plus α, ᾱ and memory-consistency constraints when present.
    pub fn psi(&self, pool: &mut TermPool) -> TermId {
        let mut parts = vec![self.pre];
        parts.push(self.src.defined[&self.root]);
        parts.push(self.src.poison_free[&self.root]);
        parts.extend(self.src.alloca_constraints.iter().copied());
        parts.extend(self.tgt.alloca_constraints.iter().copied());
        parts.extend(self.mem_consistency.iter().copied());
        pool.and(parts)
    }
}

struct TemplateCtx<'a> {
    pool: &'a mut TermPool,
    typing: &'a TypeAssignment,
    inputs: &'a mut HashMap<String, TermId>,
    consts: &'a mut HashMap<String, TermId>,
    base_mem: &'a mut BaseMemory,
    /// Register name -> width, for `width(%x)` in constant expressions.
    reg_widths: HashMap<String, u32>,
    in_target: bool,
    /// Values (and δ/ρ) inherited from the source template (for target
    /// encoding): registers defined by the source and not overwritten.
    inherited: Option<&'a TemplateEnc>,
    enc: TemplateEnc,
}

impl TemplateCtx<'_> {
    /// Width of the value stored in a register-sized operand of a stmt.
    fn operand_width(&self, in_target: bool, si: usize, oi: usize, op: &Operand) -> u32 {
        let key = match op {
            Operand::Reg(name, _) => Key::Reg(name.clone()),
            _ => Key::Operand(in_target, si, oi),
        };
        self.typing
            .type_of(&key)
            .register_width(self.typing.ptr_width)
    }

    /// Resolves an operand into (value, δ, ρ).
    fn operand(
        &mut self,
        si: usize,
        oi: usize,
        op: &Operand,
    ) -> Result<(TermId, TermId, TermId), EncodeError> {
        let t = self.pool.tru();
        match op {
            Operand::Reg(name, _) => {
                // A register is: defined earlier in this template, inherited
                // from the source, or an input.
                if let Some(&v) = self.enc.values.get(name) {
                    return Ok((v, self.enc.defined[name], self.enc.poison_free[name]));
                }
                if let Some(inh) = self.inherited {
                    if let Some(&v) = inh.values.get(name) {
                        return Ok((v, inh.defined[name], inh.poison_free[name]));
                    }
                }
                if let Some(&v) = self.inputs.get(name) {
                    return Ok((v, t, t));
                }
                let w = self.operand_width(self.in_target, si, oi, op);
                let v = self.pool.var(format!("%{name}"), Sort::BitVec(w));
                self.inputs.insert(name.clone(), v);
                Ok((v, t, t))
            }
            Operand::Const(e, _) => {
                let w = self.operand_width(self.in_target, si, oi, op);
                // Ensure all symbols have variables of their typed width.
                for s in e.symbols() {
                    if !self.consts.contains_key(s) {
                        let sw = self
                            .typing
                            .type_of(&Key::Sym(s.to_string()))
                            .register_width(self.typing.ptr_width);
                        let v = self.pool.var(s.to_string(), Sort::BitVec(sw));
                        self.consts.insert(s.to_string(), v);
                    }
                }
                let env = NameEnv {
                    consts: self.consts,
                    regs: &HashMap::new(),
                    reg_widths: &self.reg_widths,
                };
                let v = encode_cexpr(self.pool, e, w, &env)?;
                Ok((v, t, t))
            }
            Operand::Undef(_) => {
                let w = self.operand_width(self.in_target, si, oi, op);
                let which = if self.in_target { "tgt" } else { "src" };
                let v = self
                    .pool
                    .var(format!("undef.{which}.{}.{}", si, oi), Sort::BitVec(w));
                self.enc.undefs.push(v);
                Ok((v, t, t))
            }
        }
    }

    fn define(&mut self, name: &str, value: TermId, defined: TermId, poison_free: TermId) {
        self.enc.values.insert(name.to_string(), value);
        self.enc.defined.insert(name.to_string(), defined);
        self.enc.poison_free.insert(name.to_string(), poison_free);
    }

    /// Records the definedness of a side-effecting instruction so later
    /// memory operations inherit it (sequence points, paper §3.3.1).
    fn sequence_point(&mut self, def: TermId) {
        let combined = match self.enc.memory.sequence_def {
            Some(prev) => self.pool.and2(prev, def),
            None => def,
        };
        self.enc.memory.sequence_def = Some(combined);
    }

    fn with_sequence(&mut self, def: TermId) -> TermId {
        match self.enc.memory.sequence_def {
            Some(seq) => self.pool.and2(seq, def),
            None => def,
        }
    }

    fn encode_stmts(&mut self, stmts: &[Stmt]) -> Result<(), EncodeError> {
        for (si, stmt) in stmts.iter().enumerate() {
            self.encode_stmt(si, stmt)?;
        }
        Ok(())
    }

    fn encode_stmt(&mut self, si: usize, stmt: &Stmt) -> Result<(), EncodeError> {
        let tru = self.pool.tru();
        match &stmt.inst {
            Inst::BinOp { op, flags, a, b } => {
                let (av, ad, ap) = self.operand(si, 0, a)?;
                let (bv, bd, bp) = self.operand(si, 1, b)?;
                let value = binop_value(self.pool, *op, av, bv);
                let own_def = binop_defined(self.pool, *op, av, bv);
                let defined = self.pool.and([own_def, ad, bd]);
                let mut own_poison = tru;
                for f in flags {
                    let pf = flag_poison_free(self.pool, *op, *f, av, bv);
                    own_poison = self.pool.and2(own_poison, pf);
                }
                let poison = self.pool.and([own_poison, ap, bp]);
                let name = stmt.name.as_deref().expect("binop defines a register");
                self.define(name, value, defined, poison);
            }
            Inst::Conv { op, arg, .. } => {
                let name = stmt.name.as_deref().expect("conv defines a register");
                let (av, ad, ap) = self.operand(si, 0, arg)?;
                let rw = self
                    .typing
                    .type_of(&Key::Reg(name.to_string()))
                    .register_width(self.typing.ptr_width);
                let value = match op {
                    ConvOp::ZExt => self.pool.zext(av, rw),
                    ConvOp::SExt => self.pool.sext(av, rw),
                    ConvOp::Trunc => self.pool.trunc(av, rw),
                    // Pointers are plain bitvectors of pointer width, so
                    // the pointer/integer reinterpretations are wirings
                    // (possibly with a width change for inttoptr/ptrtoint
                    // at differing widths).
                    ConvOp::Bitcast => av,
                    ConvOp::IntToPtr | ConvOp::PtrToInt => {
                        let aw = self.pool.width(av);
                        if rw > aw {
                            self.pool.zext(av, rw)
                        } else {
                            self.pool.trunc(av, rw)
                        }
                    }
                };
                self.define(name, value, ad, ap);
            }
            Inst::Select {
                cond,
                on_true,
                on_false,
            } => {
                let (cv, cd, cp) = self.operand(si, 0, cond)?;
                let (tv, td, tp) = self.operand(si, 1, on_true)?;
                let (ev, ed, ep) = self.operand(si, 2, on_false)?;
                let cb = bv1_to_bool(self.pool, cv);
                let value = self.pool.ite(cb, tv, ev);
                let defined = self.pool.and([cd, td, ed]);
                let poison = self.pool.and([cp, tp, ep]);
                let name = stmt.name.as_deref().expect("select defines a register");
                self.define(name, value, defined, poison);
            }
            Inst::ICmp { pred, a, b } => {
                let (av, ad, ap) = self.operand(si, 0, a)?;
                let (bv, bd, bp) = self.operand(si, 1, b)?;
                let c = crate::semantics::icmp_bool(self.pool, *pred, av, bv);
                let value = bool_to_bv1(self.pool, c);
                let defined = self.pool.and2(ad, bd);
                let poison = self.pool.and2(ap, bp);
                let name = stmt.name.as_deref().expect("icmp defines a register");
                self.define(name, value, defined, poison);
            }
            Inst::Copy { val } => {
                let (v, d, p) = self.operand(si, 0, val)?;
                let name = stmt.name.as_deref().expect("copy defines a register");
                self.define(name, v, d, p);
            }
            Inst::Alloca { ty: _, count } => {
                let name = stmt.name.as_deref().expect("alloca defines a register");
                self.enc.memory.has_ops = true;
                let pw = self.typing.ptr_width;
                let ptr = self.pool.var(format!("alloca.%{name}"), Sort::BitVec(pw));
                // Element type and count (count must be a literal constant).
                let elem_ty = match self.typing.type_of(&Key::Reg(name.to_string())) {
                    ConcreteType::Ptr(inner) => (**inner).clone(),
                    other => return Err(eerr(format!("alloca result is not a pointer: {other}"))),
                };
                let n = match count {
                    Operand::Const(alive_ir::CExpr::Lit(n), _) if *n > 0 => *n as u64,
                    _ => return Err(eerr("alloca count must be a positive literal")),
                };
                let elem_bytes = elem_ty.alloc_size_bits(pw) / 8;
                let size_bytes = elem_bytes.max(1) * n;

                // α constraints (paper §3.3.1): non-null, aligned, no wrap.
                let zero = self.pool.bv(pw, 0);
                let non_null = self.pool.ne(ptr, zero);
                self.enc.alloca_constraints.push(non_null);
                let align = elem_bytes.next_power_of_two().max(1);
                if align > 1 {
                    let mask = self.pool.bv(pw, (align - 1) as u128);
                    let low = self.pool.bv_and(ptr, mask);
                    let aligned = self.pool.eq(low, zero);
                    self.enc.alloca_constraints.push(aligned);
                }
                let size_t = self.pool.bv(pw, size_bytes as u128);
                let end = self.pool.bv_add(ptr, size_t);
                let no_wrap = self.pool.bv_ule(ptr, end);
                self.enc.alloca_constraints.push(no_wrap);
                // Disjointness from earlier allocations.
                for (prev, prev_size) in self.enc.alloca_regions.clone() {
                    let prev_size_t = self.pool.bv(pw, prev_size as u128);
                    let prev_end = self.pool.bv_add(prev, prev_size_t);
                    let before = self.pool.bv_ule(end, prev);
                    let after = self.pool.bv_ule(prev_end, ptr);
                    let disjoint = self.pool.or2(before, after);
                    self.enc.alloca_constraints.push(disjoint);
                }
                self.enc.alloca_regions.push((ptr, size_bytes));

                // Uninitialized contents: fresh bytes, members of U (loads
                // of uninitialized memory yield undef).
                for k in 0..size_bytes {
                    let b = self
                        .pool
                        .var(format!("uninit.%{name}.{k}"), Sort::BitVec(8));
                    self.enc.undefs.push(b);
                    let off = self.pool.bv(pw, k as u128);
                    let addr = self.pool.bv_add(ptr, off);
                    self.enc.memory.stores.push(StoreEntry {
                        addr,
                        byte: b,
                        guard: tru,
                    });
                }
                self.define(name, ptr, tru, tru);
                self.sequence_point(tru);
            }
            Inst::Load { ptr } => {
                let name = stmt.name.as_deref().expect("load defines a register");
                self.enc.memory.has_ops = true;
                let (pv, pd, pp) = self.operand(si, 0, ptr)?;
                let w = self
                    .typing
                    .type_of(&Key::Reg(name.to_string()))
                    .register_width(self.typing.ptr_width);
                let bytes = (w as u64).div_ceil(8);
                let pw = self.typing.ptr_width;

                // Little-endian byte concatenation.
                let mut value: Option<TermId> = None;
                for k in 0..bytes {
                    let off = self.pool.bv(pw, k as u128);
                    let addr = self.pool.bv_add(pv, off);
                    let byte = self.enc.memory.read_byte(self.pool, self.base_mem, addr);
                    value = Some(match value {
                        None => byte,
                        Some(acc) => self.pool.concat(byte, acc),
                    });
                }
                let mut v = value.expect("at least one byte");
                if bytes * 8 > w as u64 {
                    v = self.pool.trunc(v, w);
                }
                let own_def = self.load_store_defined(pv, bytes);
                let defined0 = self.pool.and2(pd, own_def);
                let defined = self.with_sequence(defined0);
                self.define(name, v, defined, pp);
                self.sequence_point(defined);
            }
            Inst::Store { val, ptr } => {
                self.enc.memory.has_ops = true;
                let (vv, vd, vp) = self.operand(si, 0, val)?;
                let (pv, pd, pp) = self.operand(si, 1, ptr)?;
                let w = self.pool.width(vv);
                let bytes = (w as u64).div_ceil(8);
                let pw = self.typing.ptr_width;
                let own_def = self.load_store_defined(pv, bytes);
                let defined0 = self.pool.and([vd, vp, pd, pp, own_def]);
                let guard = self.with_sequence(defined0);
                // Slice the value into bytes; pad the last byte with zeros.
                let padded = if !w.is_multiple_of(8) {
                    self.pool.zext(vv, (bytes * 8) as u32)
                } else {
                    vv
                };
                for k in 0..bytes {
                    let lo = (k * 8) as u32;
                    let byte = self.pool.extract(padded, lo + 7, lo);
                    let off = self.pool.bv(pw, k as u128);
                    let addr = self.pool.bv_add(pv, off);
                    self.enc
                        .memory
                        .stores
                        .push(StoreEntry { addr, byte, guard });
                }
                self.sequence_point(guard);
            }
            Inst::Gep { ptr, idxs } => {
                let name = stmt.name.as_deref().expect("gep defines a register");
                self.enc.memory.has_ops = true;
                let (pv, pd, pp) = self.operand(si, 0, ptr)?;
                let pw = self.typing.ptr_width;
                // Element size from the pointee type of the result.
                let elem_bytes = match self.typing.type_of(&Key::Reg(name.to_string())) {
                    ConcreteType::Ptr(inner) => inner.alloc_size_bits(pw) / 8,
                    other => return Err(eerr(format!("gep result is not a pointer: {other}"))),
                };
                let mut addr = pv;
                let mut defined = pd;
                let mut poison = pp;
                for (i, idx) in idxs.iter().enumerate() {
                    let (iv, id, ip) = self.operand(si, 1 + i, idx)?;
                    let iw = self.pool.width(iv);
                    let idx_ptr = if iw < pw {
                        self.pool.sext(iv, pw)
                    } else if iw > pw {
                        self.pool.trunc(iv, pw)
                    } else {
                        iv
                    };
                    let scale = self.pool.bv(pw, elem_bytes.max(1) as u128);
                    let scaled = self.pool.bv_mul(idx_ptr, scale);
                    addr = self.pool.bv_add(addr, scaled);
                    defined = self.pool.and2(defined, id);
                    poison = self.pool.and2(poison, ip);
                }
                self.define(name, addr, defined, poison);
            }
            Inst::Unreachable => {
                // Executing unreachable is immediate UB: it contributes an
                // always-false sequence-point definedness.
                let f = self.pool.fls();
                self.sequence_point(f);
            }
        }
        Ok(())
    }

    /// Definedness of a memory access: non-null pointer and, when the
    /// pointer is an alloca result, in-bounds for that allocation.
    fn load_store_defined(&mut self, ptr: TermId, bytes: u64) -> TermId {
        let pw = self.typing.ptr_width;
        let zero = self.pool.bv(pw, 0);
        let mut def = self.pool.ne(ptr, zero);
        // In-bounds constraint when the pointer is (syntactically) an
        // alloca result of this template or the inherited one.
        let regions: Vec<(TermId, u64)> = self
            .enc
            .alloca_regions
            .iter()
            .chain(self.inherited.iter().flat_map(|i| i.alloca_regions.iter()))
            .cloned()
            .collect();
        for (base, size) in regions {
            if base == ptr {
                if bytes > size {
                    def = self.pool.fls();
                } // else: access at the base of a sufficiently large block.
                return def;
            }
        }
        def
    }
}

/// Encodes a transformation at one type assignment.
///
/// # Errors
///
/// Fails on unknown predicates/functions or malformed memory operations.
pub fn encode_transform(
    pool: &mut TermPool,
    t: &Transform,
    typing: &TypeAssignment,
) -> Result<TransformEnc, EncodeError> {
    let mut inputs = HashMap::new();
    let mut consts = HashMap::new();
    let mut base_mem = BaseMemory::default();
    let reg_widths: HashMap<String, u32> = typing
        .iter()
        .filter_map(|(k, ct)| match k {
            alive_typeck::Key::Reg(n) => Some((n.clone(), ct.register_width(typing.ptr_width))),
            _ => None,
        })
        .collect();

    // Source template.
    let src = {
        let mut ctx = TemplateCtx {
            pool,
            typing,
            inputs: &mut inputs,
            consts: &mut consts,
            base_mem: &mut base_mem,
            reg_widths: reg_widths.clone(),
            in_target: false,
            inherited: None,
            enc: TemplateEnc::default(),
        };
        ctx.encode_stmts(&t.source)?;
        ctx.enc
    };

    // Target template (inherits source values for non-overwritten regs).
    let tgt = {
        let mut ctx = TemplateCtx {
            pool,
            typing,
            inputs: &mut inputs,
            consts: &mut consts,
            base_mem: &mut base_mem,
            reg_widths: reg_widths.clone(),
            in_target: true,
            inherited: Some(&src),
            enc: TemplateEnc::default(),
        };
        ctx.encode_stmts(&t.target)?;
        ctx.enc
    };

    // Make sure every constant symbol mentioned only in the precondition
    // also has a variable.
    for s in t.constant_symbols() {
        if let std::collections::hash_map::Entry::Vacant(e) = consts.entry(s.clone()) {
            let w = typing
                .get(&Key::Sym(s))
                .map(|ct| ct.register_width(typing.ptr_width))
                .unwrap_or(32);
            let v = pool.var(e.key().clone(), Sort::BitVec(w));
            e.insert(v);
        }
    }

    // Precondition. Register references resolve to source values or inputs.
    let mut pred_regs: HashMap<String, TermId> = HashMap::new();
    let mut reg_widths: HashMap<String, u32> = HashMap::new();
    for (name, &v) in inputs.iter() {
        pred_regs.insert(name.clone(), v);
        reg_widths.insert(name.clone(), pool.width(v));
    }
    for (name, &v) in src.values.iter() {
        pred_regs.insert(name.clone(), v);
        reg_widths.insert(name.clone(), pool.width(v));
    }
    let width_hint = |p: &alive_ir::Pred| -> u32 {
        // Width of a precondition comparison: the typed width of any
        // abstract constant it mentions (falling back to the root width,
        // then 32). Using the root width alone would be wrong for
        // icmp-rooted transformations whose root is i1.
        fn syms_of(p: &alive_ir::Pred, out: &mut Vec<String>) {
            match p {
                alive_ir::Pred::Cmp(_, a, b) => {
                    out.extend(a.symbols().iter().map(|s| s.to_string()));
                    out.extend(b.symbols().iter().map(|s| s.to_string()));
                }
                alive_ir::Pred::Not(a) => syms_of(a, out),
                alive_ir::Pred::And(a, b) | alive_ir::Pred::Or(a, b) => {
                    syms_of(a, out);
                    syms_of(b, out);
                }
                _ => {}
            }
        }
        let mut syms = Vec::new();
        syms_of(p, &mut syms);
        for s in syms {
            if let Some(ct) = typing.get(&Key::Sym(s)) {
                return ct.register_width(typing.ptr_width);
            }
        }
        typing
            .get(&Key::Reg(t.root().to_string()))
            .map(|ct| ct.register_width(typing.ptr_width))
            .unwrap_or(32)
    };
    let pre_enc = {
        let env = NameEnv {
            consts: &consts,
            regs: &pred_regs,
            reg_widths: &reg_widths,
        };
        encode_pred(pool, &t.pre, width_hint, &env)?
    };

    Ok(TransformEnc {
        src,
        tgt,
        inputs,
        consts,
        pre: pre_enc.formula,
        pre_aux: pre_enc.aux_vars,
        mem_consistency: base_mem.constraints,
        root: t.root().to_string(),
        ptr_width: typing.ptr_width,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_ir::parse_transform;
    use alive_smt::{eval, Assignment, BvVal, Value};
    use alive_typeck::{enumerate_typings, TypeckConfig};

    fn encode_at_width8(src: &str) -> (TermPool, TransformEnc) {
        let t = parse_transform(src).unwrap();
        let cfg = TypeckConfig {
            widths: vec![8],
            ..TypeckConfig::default()
        };
        let typings = enumerate_typings(&t, &cfg).unwrap();
        let mut pool = TermPool::new();
        let enc = encode_transform(&mut pool, &t, &typings[0]).unwrap();
        (pool, enc)
    }

    #[test]
    fn encodes_intro_example_values() {
        let (pool, enc) = encode_at_width8("%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x");
        let x = enc.inputs["x"];
        let c = enc.consts["C"];
        let mut env = Assignment::new();
        env.set(x, BvVal::new(8, 10));
        env.set(c, BvVal::new(8, 3));
        // source: (x ^ -1) + C = (245) + 3 = 248
        let sv = eval(&pool, enc.src.values["2"], &env).unwrap();
        assert_eq!(sv, Value::Bv(BvVal::new(8, 248)));
        // target: (C-1) - x = 2 - 10 = 248 (mod 256)
        let tv = eval(&pool, enc.tgt.values["2"], &env).unwrap();
        assert_eq!(tv, Value::Bv(BvVal::new(8, 248)));
    }

    #[test]
    fn definedness_of_division() {
        let (pool, enc) = encode_at_width8("%r = sdiv %x, %y\n=>\n%r = sdiv %x, %y");
        let x = enc.inputs["x"];
        let y = enc.inputs["y"];
        let mut env = Assignment::new();
        env.set(x, BvVal::new(8, 10));
        env.set(y, BvVal::new(8, 0));
        assert_eq!(
            eval(&pool, enc.src.defined["r"], &env).unwrap(),
            Value::Bool(false)
        );
        env.set(y, BvVal::new(8, 2));
        assert_eq!(
            eval(&pool, enc.src.defined["r"], &env).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn definedness_flows_through_def_use() {
        // %a = udiv (may be undefined); %r = add %a, 1 inherits δ.
        let (pool, enc) = encode_at_width8("%a = udiv %x, %y\n%r = add %a, 1\n=>\n%r = add %a, 1");
        let y = enc.inputs["y"];
        let x = enc.inputs["x"];
        let mut env = Assignment::new();
        env.set(x, BvVal::new(8, 4));
        env.set(y, BvVal::new(8, 0));
        assert_eq!(
            eval(&pool, enc.src.defined["r"], &env).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn poison_flows_through_def_use() {
        let (pool, enc) =
            encode_at_width8("%a = add nsw %x, %y\n%r = xor %a, 1\n=>\n%r = xor %a, 1");
        let x = enc.inputs["x"];
        let y = enc.inputs["y"];
        let mut env = Assignment::new();
        env.set(x, BvVal::from_i128(8, 100));
        env.set(y, BvVal::from_i128(8, 100)); // signed overflow -> poison
        assert_eq!(
            eval(&pool, enc.src.poison_free["r"], &env).unwrap(),
            Value::Bool(false)
        );
        env.set(y, BvVal::from_i128(8, 27));
        assert_eq!(
            eval(&pool, enc.src.poison_free["r"], &env).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn undef_operands_become_fresh_vars() {
        let (_, enc) = encode_at_width8("%r = select undef, i8 -1, 0\n=>\n%r = ashr undef, 3");
        // The select condition is i1 undef in the source; the ashr operand
        // is i8 undef in the target.
        assert_eq!(enc.src.undefs.len(), 1);
        assert_eq!(enc.tgt.undefs.len(), 1);
    }

    #[test]
    fn target_inherits_source_temporaries() {
        let (pool, enc) = encode_at_width8(
            "%t0 = or %B, %V\n%t1 = and %t0, C1\n%t2 = and %B, C2\n%R = or %t1, %t2\n=>\n%R = and %t0, (C1 | C2)",
        );
        // Target's %R uses source's %t0 value.
        let b = enc.inputs["B"];
        let v = enc.inputs["V"];
        let c1 = enc.consts["C1"];
        let c2 = enc.consts["C2"];
        let mut env = Assignment::new();
        env.set(b, BvVal::new(8, 0b1010));
        env.set(v, BvVal::new(8, 0b0101));
        env.set(c1, BvVal::new(8, 0xF0));
        env.set(c2, BvVal::new(8, 0x0F));
        let tv = eval(&pool, enc.tgt.values["R"], &env).unwrap();
        assert_eq!(tv, Value::Bv(BvVal::new(8, 0b1111)));
    }

    #[test]
    fn store_then_load_forwards_value() {
        let (mut pool, enc) = encode_at_width8("store %v, %p\n%r = load %p\n=>\n%r = %v");
        let v = enc.inputs["v"];
        let p = enc.inputs["p"];
        // With p non-null, the load must return the stored value: the
        // negation is unsatisfiable.
        let nonnull = {
            let zero = pool.bv(32, 0);
            pool.ne(p, zero)
        };
        let differs = pool.ne(enc.src.values["r"], v);
        let mut s = alive_smt::SmtSolver::new();
        s.assert_term(&pool, nonnull);
        s.assert_term(&pool, differs);
        for &c in &enc.mem_consistency {
            s.assert_term(&pool, c);
        }
        assert_eq!(s.check(), alive_smt::SatResult::Unsat);
        // Definedness requires a non-null pointer.
        let zero = pool.bv(32, 0);
        let null = pool.eq(p, zero);
        let defined = enc.src.defined["r"];
        let mut s2 = alive_smt::SmtSolver::new();
        s2.assert_term(&pool, null);
        s2.assert_term(&pool, defined);
        assert_eq!(s2.check(), alive_smt::SatResult::Unsat);
    }

    #[test]
    fn alloca_generates_constraints_and_undef_bytes() {
        let (_, enc) = encode_at_width8("%p = alloca i8, 2\n%v = load %p\n=>\n%v = undef");
        assert_eq!(enc.src.alloca_regions.len(), 1);
        assert_eq!(enc.src.alloca_regions[0].1, 2);
        // Two uninitialized bytes join U.
        assert_eq!(enc.src.undefs.len(), 2);
        assert!(!enc.src.alloca_constraints.is_empty());
    }

    #[test]
    fn psi_includes_precondition() {
        let t = parse_transform("Pre: C1 == 1\n%r = shl %x, C1\n=>\n%r = add %x, %x").unwrap();
        let cfg = TypeckConfig {
            widths: vec![8],
            ..TypeckConfig::default()
        };
        let typing = &enumerate_typings(&t, &cfg).unwrap()[0];
        let mut pool = TermPool::new();
        let enc = encode_transform(&mut pool, &t, typing).unwrap();
        let psi = enc.psi(&mut pool);
        let x = enc.inputs["x"];
        let c1 = enc.consts["C1"];
        let mut env = Assignment::new();
        env.set(x, BvVal::new(8, 5));
        env.set(c1, BvVal::new(8, 2)); // violates precondition
        assert_eq!(eval(&pool, psi, &env).unwrap(), Value::Bool(false));
        env.set(c1, BvVal::new(8, 1));
        assert_eq!(eval(&pool, psi, &env).unwrap(), Value::Bool(true));
    }
}
