//! Verification-condition generation for Alive transformations.
//!
//! This crate turns an Alive transformation plus one concrete type
//! assignment into SMT terms: per-value results (ι), definedness
//! constraints (δ, Table 1 of the paper), poison-freedom constraints
//! (ρ, Table 2), `undef` variable sets (U / Ū), the encoded precondition
//! (φ, with must-analysis side conditions), and the eager memory encoding
//! of §3.3.3.
//!
//! The downstream `alive-verifier` crate assembles these pieces into the
//! refinement checks of §3.1.2.
//!
//! # Examples
//!
//! ```
//! use alive_ir::parse_transform;
//! use alive_typeck::{enumerate_typings, TypeckConfig};
//! use alive_smt::TermPool;
//! use alive_vcgen::encode_transform;
//!
//! let t = parse_transform("%1 = xor %x, -1\n%2 = add %1, C\n=>\n%2 = sub C-1, %x").unwrap();
//! let typing = &enumerate_typings(&t, &TypeckConfig::fast()).unwrap()[0];
//! let mut pool = TermPool::new();
//! let enc = encode_transform(&mut pool, &t, typing).unwrap();
//! assert!(enc.src.values.contains_key("2"));
//! assert!(enc.tgt.values.contains_key("2"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cexpr;
mod encode;
pub mod semantics;

pub use cexpr::{
    encode_cexpr, encode_pred, is_power_of_two_term, log2_term, EncodeError, EncodedPred, NameEnv,
};
pub use encode::{encode_transform, BaseMemory, MemState, StoreEntry, TemplateEnc, TransformEnc};
