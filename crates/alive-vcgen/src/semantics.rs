//! Instruction semantics: value, definedness (Table 1) and poison-freedom
//! (Table 2) for every Alive integer instruction.

use alive_ir::ast::{BinOp, Flag, ICmpPred};
use alive_smt::{BvVal, TermId, TermPool};

/// The value computed by a binary operation.
pub fn binop_value(pool: &mut TermPool, op: BinOp, a: TermId, b: TermId) -> TermId {
    match op {
        BinOp::Add => pool.bv_add(a, b),
        BinOp::Sub => pool.bv_sub(a, b),
        BinOp::Mul => pool.bv_mul(a, b),
        BinOp::UDiv => pool.bv_udiv(a, b),
        BinOp::SDiv => pool.bv_sdiv(a, b),
        BinOp::URem => pool.bv_urem(a, b),
        BinOp::SRem => pool.bv_srem(a, b),
        BinOp::Shl => pool.bv_shl(a, b),
        BinOp::LShr => pool.bv_lshr(a, b),
        BinOp::AShr => pool.bv_ashr(a, b),
        BinOp::And => pool.bv_and(a, b),
        BinOp::Or => pool.bv_or(a, b),
        BinOp::Xor => pool.bv_xor(a, b),
    }
}

/// Definedness constraint of a binary operation (paper Table 1).
///
/// Instructions not listed in Table 1 are always defined, yielding `true`.
pub fn binop_defined(pool: &mut TermPool, op: BinOp, a: TermId, b: TermId) -> TermId {
    let w = pool.width(a);
    match op {
        BinOp::UDiv | BinOp::URem => {
            let zero = pool.bv(w, 0);
            pool.ne(b, zero)
        }
        BinOp::SDiv | BinOp::SRem => {
            // b != 0 && (a != INT_MIN || b != -1)
            let zero = pool.bv(w, 0);
            let nz = pool.ne(b, zero);
            let int_min = pool.bv_const(BvVal::int_min(w));
            let m1 = pool.bv_const(BvVal::ones(w));
            let not_min = pool.ne(a, int_min);
            let not_m1 = pool.ne(b, m1);
            let no_ov = pool.or2(not_min, not_m1);
            pool.and2(nz, no_ov)
        }
        BinOp::Shl | BinOp::LShr | BinOp::AShr => {
            // b <u width
            let bw = pool.bv(w, w as u128);
            pool.bv_ult(b, bw)
        }
        _ => pool.tru(),
    }
}

/// Poison-freedom constraint of a single attribute on a binary operation
/// (paper Table 2).
///
/// # Panics
///
/// Panics if the (op, flag) pair is not in Table 2 — callers must respect
/// [`BinOp::allowed_flags`].
pub fn flag_poison_free(
    pool: &mut TermPool,
    op: BinOp,
    flag: Flag,
    a: TermId,
    b: TermId,
) -> TermId {
    let w = pool.width(a);
    match (op, flag) {
        (BinOp::Add, Flag::Nsw) => {
            // SExt(a,1) + SExt(b,1) == SExt(a+b,1)
            let ea = pool.sext(a, w + 1);
            let eb = pool.sext(b, w + 1);
            let wide = pool.bv_add(ea, eb);
            let sum = pool.bv_add(a, b);
            let esum = pool.sext(sum, w + 1);
            pool.eq(wide, esum)
        }
        (BinOp::Add, Flag::Nuw) => {
            let ea = pool.zext(a, w + 1);
            let eb = pool.zext(b, w + 1);
            let wide = pool.bv_add(ea, eb);
            let sum = pool.bv_add(a, b);
            let esum = pool.zext(sum, w + 1);
            pool.eq(wide, esum)
        }
        (BinOp::Sub, Flag::Nsw) => {
            let ea = pool.sext(a, w + 1);
            let eb = pool.sext(b, w + 1);
            let wide = pool.bv_sub(ea, eb);
            let diff = pool.bv_sub(a, b);
            let ediff = pool.sext(diff, w + 1);
            pool.eq(wide, ediff)
        }
        (BinOp::Sub, Flag::Nuw) => {
            let ea = pool.zext(a, w + 1);
            let eb = pool.zext(b, w + 1);
            let wide = pool.bv_sub(ea, eb);
            let diff = pool.bv_sub(a, b);
            let ediff = pool.zext(diff, w + 1);
            pool.eq(wide, ediff)
        }
        (BinOp::Mul, Flag::Nsw) => {
            // SExt(a,B) * SExt(b,B) == SExt(a*b,B) at double width.
            let ea = pool.sext(a, 2 * w);
            let eb = pool.sext(b, 2 * w);
            let wide = pool.bv_mul(ea, eb);
            let prod = pool.bv_mul(a, b);
            let eprod = pool.sext(prod, 2 * w);
            pool.eq(wide, eprod)
        }
        (BinOp::Mul, Flag::Nuw) => {
            let ea = pool.zext(a, 2 * w);
            let eb = pool.zext(b, 2 * w);
            let wide = pool.bv_mul(ea, eb);
            let prod = pool.bv_mul(a, b);
            let eprod = pool.zext(prod, 2 * w);
            pool.eq(wide, eprod)
        }
        (BinOp::SDiv, Flag::Exact) => {
            // (a / b) * b == a
            let q = pool.bv_sdiv(a, b);
            let back = pool.bv_mul(q, b);
            pool.eq(back, a)
        }
        (BinOp::UDiv, Flag::Exact) => {
            let q = pool.bv_udiv(a, b);
            let back = pool.bv_mul(q, b);
            pool.eq(back, a)
        }
        (BinOp::Shl, Flag::Nsw) => {
            // (a << b) >> b == a  (arithmetic shift back)
            let sh = pool.bv_shl(a, b);
            let back = pool.bv_ashr(sh, b);
            pool.eq(back, a)
        }
        (BinOp::Shl, Flag::Nuw) => {
            let sh = pool.bv_shl(a, b);
            let back = pool.bv_lshr(sh, b);
            pool.eq(back, a)
        }
        (BinOp::AShr, Flag::Exact) => {
            let sh = pool.bv_ashr(a, b);
            let back = pool.bv_shl(sh, b);
            pool.eq(back, a)
        }
        (BinOp::LShr, Flag::Exact) => {
            let sh = pool.bv_lshr(a, b);
            let back = pool.bv_shl(sh, b);
            pool.eq(back, a)
        }
        (op, flag) => panic!("flag {flag} is not valid on {op}"),
    }
}

/// The boolean result of an `icmp` (as a Bool-sorted term).
pub fn icmp_bool(pool: &mut TermPool, pred: ICmpPred, a: TermId, b: TermId) -> TermId {
    match pred {
        ICmpPred::Eq => pool.eq(a, b),
        ICmpPred::Ne => pool.ne(a, b),
        ICmpPred::Ugt => pool.bv_ugt(a, b),
        ICmpPred::Uge => pool.bv_uge(a, b),
        ICmpPred::Ult => pool.bv_ult(a, b),
        ICmpPred::Ule => pool.bv_ule(a, b),
        ICmpPred::Sgt => pool.bv_sgt(a, b),
        ICmpPred::Sge => pool.bv_sge(a, b),
        ICmpPred::Slt => pool.bv_slt(a, b),
        ICmpPred::Sle => pool.bv_sle(a, b),
    }
}

/// Converts a Bool term into an i1 bitvector value.
pub fn bool_to_bv1(pool: &mut TermPool, b: TermId) -> TermId {
    let one = pool.bv(1, 1);
    let zero = pool.bv(1, 0);
    pool.ite(b, one, zero)
}

/// Converts an i1 bitvector into a Bool term.
pub fn bv1_to_bool(pool: &mut TermPool, v: TermId) -> TermId {
    let one = pool.bv(1, 1);
    pool.eq(v, one)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive_smt::{eval, Assignment, Sort, Value};

    fn env2(pool: &mut TermPool, w: u32, av: i128, bv: i128) -> (TermId, TermId, Assignment) {
        let a = pool.var("a", Sort::BitVec(w));
        let b = pool.var("b", Sort::BitVec(w));
        let mut env = Assignment::new();
        env.set(a, BvVal::from_i128(w, av));
        env.set(b, BvVal::from_i128(w, bv));
        (a, b, env)
    }

    #[test]
    fn sdiv_definedness_matches_table1() {
        let mut p = TermPool::new();
        let (a, b, mut env) = env2(&mut p, 8, -128, -1);
        let d = binop_defined(&mut p, BinOp::SDiv, a, b);
        assert_eq!(eval(&p, d, &env).unwrap(), Value::Bool(false)); // INT_MIN / -1
        env.set(b, BvVal::from_i128(8, 2));
        assert_eq!(eval(&p, d, &env).unwrap(), Value::Bool(true));
        env.set(b, BvVal::from_i128(8, 0));
        assert_eq!(eval(&p, d, &env).unwrap(), Value::Bool(false)); // div by zero
    }

    #[test]
    fn shift_definedness_bounds_amount() {
        let mut p = TermPool::new();
        let (a, b, mut env) = env2(&mut p, 8, 1, 7);
        let d = binop_defined(&mut p, BinOp::Shl, a, b);
        assert_eq!(eval(&p, d, &env).unwrap(), Value::Bool(true));
        env.set(b, BvVal::from_i128(8, 8));
        assert_eq!(eval(&p, d, &env).unwrap(), Value::Bool(false));
    }

    #[test]
    fn add_nsw_poison_matches_overflow() {
        let mut p = TermPool::new();
        let (a, b, mut env) = env2(&mut p, 8, 100, 27);
        let pf = flag_poison_free(&mut p, BinOp::Add, Flag::Nsw, a, b);
        assert_eq!(eval(&p, pf, &env).unwrap(), Value::Bool(true)); // 127 fits
        env.set(b, BvVal::from_i128(8, 28)); // 128 overflows signed
        assert_eq!(eval(&p, pf, &env).unwrap(), Value::Bool(false));
    }

    #[test]
    fn add_nuw_poison_matches_unsigned_overflow() {
        let mut p = TermPool::new();
        let (a, b, mut env) = env2(&mut p, 8, 200, 55);
        let pf = flag_poison_free(&mut p, BinOp::Add, Flag::Nuw, a, b);
        assert_eq!(eval(&p, pf, &env).unwrap(), Value::Bool(true)); // 255 fits
        env.set(b, BvVal::from_i128(8, 56)); // 256 wraps
        assert_eq!(eval(&p, pf, &env).unwrap(), Value::Bool(false));
    }

    #[test]
    fn mul_nsw_poison() {
        let mut p = TermPool::new();
        let (a, b, mut env) = env2(&mut p, 8, 11, 11);
        let pf = flag_poison_free(&mut p, BinOp::Mul, Flag::Nsw, a, b);
        assert_eq!(eval(&p, pf, &env).unwrap(), Value::Bool(true)); // 121
        env.set(b, BvVal::from_i128(8, 12)); // 132 > 127
        assert_eq!(eval(&p, pf, &env).unwrap(), Value::Bool(false));
    }

    #[test]
    fn udiv_exact_poison() {
        let mut p = TermPool::new();
        let (a, b, mut env) = env2(&mut p, 8, 12, 4);
        let pf = flag_poison_free(&mut p, BinOp::UDiv, Flag::Exact, a, b);
        assert_eq!(eval(&p, pf, &env).unwrap(), Value::Bool(true)); // 12/4 exact
        env.set(a, BvVal::from_i128(8, 13));
        assert_eq!(eval(&p, pf, &env).unwrap(), Value::Bool(false)); // lossy
    }

    #[test]
    fn shl_nuw_poison() {
        let mut p = TermPool::new();
        let (a, b, mut env) = env2(&mut p, 8, 0x40, 1);
        let pf = flag_poison_free(&mut p, BinOp::Shl, Flag::Nuw, a, b);
        assert_eq!(eval(&p, pf, &env).unwrap(), Value::Bool(true)); // 0x80 ok
        env.set(b, BvVal::from_i128(8, 2)); // 0x100 loses the top bit
        assert_eq!(eval(&p, pf, &env).unwrap(), Value::Bool(false));
    }

    #[test]
    fn lshr_exact_poison() {
        let mut p = TermPool::new();
        let (a, b, mut env) = env2(&mut p, 8, 8, 3);
        let pf = flag_poison_free(&mut p, BinOp::LShr, Flag::Exact, a, b);
        assert_eq!(eval(&p, pf, &env).unwrap(), Value::Bool(true)); // 8>>3 exact
        env.set(a, BvVal::from_i128(8, 9)); // drops a one bit
        assert_eq!(eval(&p, pf, &env).unwrap(), Value::Bool(false));
    }

    #[test]
    fn icmp_predicates() {
        let mut p = TermPool::new();
        let (a, b, env) = env2(&mut p, 4, -1, 1);
        for (pred, expect) in [
            (ICmpPred::Eq, false),
            (ICmpPred::Ne, true),
            (ICmpPred::Ugt, true), // 15 > 1 unsigned
            (ICmpPred::Slt, true), // -1 < 1 signed
            (ICmpPred::Sge, false),
            (ICmpPred::Ule, false),
        ] {
            let c = icmp_bool(&mut p, pred, a, b);
            assert_eq!(
                eval(&p, c, &env).unwrap(),
                Value::Bool(expect),
                "icmp {pred}"
            );
        }
    }

    #[test]
    fn bool_bv1_round_trip() {
        let mut p = TermPool::new();
        let c = p.var("c", Sort::Bool);
        let v = bool_to_bv1(&mut p, c);
        let back = bv1_to_bool(&mut p, v);
        let mut env = Assignment::new();
        env.set(c, true);
        assert_eq!(eval(&p, back, &env).unwrap(), Value::Bool(true));
        env.set(c, false);
        assert_eq!(eval(&p, back, &env).unwrap(), Value::Bool(false));
    }
}
