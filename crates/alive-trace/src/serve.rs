//! Canonical metric names for the `alive serve` verdict cache.
//!
//! Counter, gauge, and sample names are plain strings throughout the
//! tracer, which makes typos silent: a dashboard watching `serve.hit`
//! never learns that the server started emitting `serve.hits`. Service
//! metrics — unlike the solver's, which live next to a single call site —
//! are emitted from several places (cache path, coalescing path, both
//! transports) and read back by the bench harness and the CI smoke job,
//! so their names are pinned here once and imported everywhere.
//!
//! ```
//! use alive_trace::{serve, MetricsSink, Tracer};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MetricsSink::new());
//! let tracer = Tracer::new(Box::new(Arc::clone(&sink)));
//! tracer.counter(serve::HIT, 1);
//! assert_eq!(sink.counter(serve::HIT), 1);
//! ```

/// Counter: requests answered from the verdict store.
pub const HIT: &str = "serve.hit";

/// Counter: requests that fell through to a real verification.
pub const MISS: &str = "serve.miss";

/// Counter: requests that joined an in-flight verification of the same
/// canonical transform instead of starting a duplicate one.
pub const JOIN: &str = "serve.join";

/// Counter: requests rejected before verification (parse or validation
/// failure, malformed protocol line).
pub const ERROR: &str = "serve.error";

/// Gauge: verifications currently in flight.
pub const INFLIGHT: &str = "serve.inflight";

/// Sample (µs): end-to-end latency of cache hits.
pub const HIT_US: &str = "serve.hit_us";

/// Sample (µs): end-to-end latency of cache misses (includes the
/// verification itself).
pub const MISS_US: &str = "serve.miss_us";

/// Counter: requests refused with a `busy` response because the
/// verification queue was at `--queue-depth`.
pub const BUSY: &str = "serve.busy";

/// Counter: connections shed at accept because `--max-connections`
/// were already open.
pub const SHED: &str = "serve.shed";

/// Sample (ms): how long the drain phase of a graceful shutdown took
/// (accept stop → last connection closed or force-close).
pub const DRAIN_MS: &str = "serve.drain_ms";

/// Counter: connections closed for sending nothing within the idle
/// timeout (the slow-loris defense).
pub const IDLE_CLOSE: &str = "serve.idle_close";

/// Counter: corrupt store lines quarantined by `alive scrub` (and torn
/// tail lines truncated at store open).
pub const QUARANTINED: &str = "store.quarantined";

/// Span: one wire request, end to end; `arg` carries the request id
/// (client-supplied `id` or daemon-minted `rq-<n>`), so `alive stats
/// --request <rid>` can carve out a single request's subtree.
pub const REQUEST: &str = "serve.request";

/// Span: one verdict-store lookup (lock acquisition + hash-bucket
/// probe + full-text compare).
pub const LOOKUP: &str = "serve.lookup";

/// Span: the wait a coalesced request spends joined to another
/// client's in-flight verification.
pub const COALESCE: &str = "serve.coalesce";

/// Sample (µs): end-to-end latency of coalesced joins.
pub const JOIN_US: &str = "serve.join_us";

/// Sample (µs): time a request waits before its verification starts
/// (leader) or its joined verdict arrives (follower).
pub const QUEUE_WAIT_US: &str = "serve.queue_wait_us";

/// Sample (µs): canonicalization + hashing time per request.
pub const CANON_US: &str = "serve.canon_us";

/// Sample (µs): verdict-store append time per miss.
pub const APPEND_US: &str = "serve.append_us";

/// Counter: misses whose verification exceeded the `--slow-ms`
/// threshold and were recorded in the slow-query log.
pub const SLOW: &str = "serve.slow";

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_distinct_and_prefixed() {
        let names = [
            super::HIT,
            super::MISS,
            super::JOIN,
            super::ERROR,
            super::INFLIGHT,
            super::HIT_US,
            super::MISS_US,
            super::BUSY,
            super::SHED,
            super::DRAIN_MS,
            super::IDLE_CLOSE,
            super::REQUEST,
            super::LOOKUP,
            super::COALESCE,
            super::JOIN_US,
            super::QUEUE_WAIT_US,
            super::CANON_US,
            super::APPEND_US,
            super::SLOW,
        ];
        for (i, a) in names.iter().enumerate() {
            assert!(a.starts_with("serve."), "{a}");
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // The scrub counter is store-scoped, not serve-scoped.
        assert!(super::QUARANTINED.starts_with("store."));
    }
}
