//! In-memory metric aggregation: the sink behind `--metrics`.
//!
//! [`MetricsSink`] folds the event stream down to totals as it arrives —
//! counter sums, last-seen gauge levels, log2 [`Histogram`]s of samples
//! and span durations — and renders the end-of-run summary table printed
//! to stderr. It is usually installed behind a [`TeeSink`](crate::TeeSink)
//! next to the JSONL sink so one run feeds both the file and the table.

use crate::hist::Histogram;
use crate::{Event, EventKind, TraceSink};
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Debug, Default)]
struct MetricsState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<&'static str, u64>,
    samples: BTreeMap<&'static str, Histogram>,
    spans: BTreeMap<&'static str, Histogram>,
}

/// A [`TraceSink`] aggregating events into counters, gauges, and
/// histograms, for the `--metrics` summary table.
#[derive(Debug, Default)]
pub struct MetricsSink {
    state: Mutex<MetricsState>,
}

/// Renders microseconds compactly (`950us`, `12.3ms`, `4.56s`).
fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

impl MetricsSink {
    /// Creates an empty aggregator.
    pub fn new() -> MetricsSink {
        MetricsSink::default()
    }

    /// Final value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.counters.get(name).copied().unwrap_or(0)
    }

    /// Last-seen level of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.gauges.get(name).copied()
    }

    /// Histogram of samples recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.samples.get(name).cloned()
    }

    /// Histogram of durations (µs) of completed spans named `name`.
    pub fn span_durations(&self, name: &str) -> Option<Histogram> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.spans.get(name).cloned()
    }

    /// The human-readable summary table (one section each for spans,
    /// counters, gauges, and sample histograms; empty sections omitted).
    pub fn render(&self) -> String {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        if !st.spans.is_empty() {
            out.push_str(&format!(
                "{:<18} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                "span", "count", "total", "mean", "p95", "max"
            ));
            for (name, h) in &st.spans {
                out.push_str(&format!(
                    "{:<18} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                    name,
                    h.count(),
                    fmt_us(h.sum()),
                    fmt_us(h.mean().unwrap_or(0.0) as u64),
                    fmt_us(h.quantile(0.95).unwrap_or(0)),
                    fmt_us(h.max().unwrap_or(0)),
                ));
            }
        }
        if !st.counters.is_empty() {
            out.push_str(&format!("\n{:<28} {:>12}\n", "counter", "total"));
            for (name, v) in &st.counters {
                out.push_str(&format!("{name:<28} {v:>12}\n"));
            }
        }
        if !st.gauges.is_empty() {
            out.push_str(&format!("\n{:<28} {:>12}\n", "gauge", "last"));
            for (name, v) in &st.gauges {
                out.push_str(&format!("{name:<28} {v:>12}\n"));
            }
        }
        if !st.samples.is_empty() {
            out.push_str(&format!(
                "\n{:<22} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
                "histogram", "count", "min", "mean", "p95", "max"
            ));
            for (name, h) in &st.samples {
                out.push_str(&format!(
                    "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
                    name,
                    h.count(),
                    h.min().unwrap_or(0),
                    h.mean().unwrap_or(0.0).round() as u64,
                    h.quantile(0.95).unwrap_or(0),
                    h.max().unwrap_or(0),
                ));
            }
        }
        out
    }
}

impl TraceSink for MetricsSink {
    fn record(&self, event: &Event) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match event.kind {
            EventKind::Start | EventKind::Mark => {}
            EventKind::End => {
                st.spans.entry(event.name).or_default().record(event.value);
            }
            EventKind::Counter => {
                let key = if event.arg.is_empty() {
                    event.name.to_string()
                } else {
                    format!("{}.{}", event.name, event.arg)
                };
                *st.counters.entry(key).or_insert(0) += event.value;
            }
            EventKind::Gauge => {
                st.gauges.insert(event.name, event.value);
            }
            EventKind::Sample => {
                st.samples
                    .entry(event.name)
                    .or_default()
                    .record(event.value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;
    use std::sync::Arc;

    #[test]
    fn aggregates_counters_spans_and_samples() {
        let sink = Arc::new(MetricsSink::new());
        let t = Tracer::new(Box::new(Arc::clone(&sink)));
        {
            let _s = t.span("sat.solve");
            t.counter("sat.conflicts", 10);
            t.counter("sat.conflicts", 5);
            t.gauge("pool.queue_depth", 3);
            t.sample("sat.learned_len", 8);
            t.sample("sat.learned_len", 2);
        }
        assert_eq!(sink.counter("sat.conflicts"), 15);
        assert_eq!(sink.gauge("pool.queue_depth"), Some(3));
        let h = sink.histogram("sat.learned_len").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 10);
        let d = sink.span_durations("sat.solve").unwrap();
        assert_eq!(d.count(), 1);
        let table = sink.render();
        assert!(table.contains("sat.solve"));
        assert!(table.contains("sat.conflicts"));
        assert!(table.contains("15"));
        assert!(table.contains("pool.queue_depth"));
        assert!(table.contains("sat.learned_len"));
    }

    #[test]
    fn fmt_us_scales() {
        assert_eq!(fmt_us(950), "950us");
        assert_eq!(fmt_us(12_300), "12.3ms");
        assert_eq!(fmt_us(4_560_000), "4.56s");
    }
}
