//! Structured tracing, metrics, and per-phase profiling for the alive-rs
//! solver stack.
//!
//! The paper's authors learned where Alive got stuck (four
//! multiplication-heavy transforms timing out) by *looking at where the
//! time went*. This crate is that instrument for the reproduction: a
//! zero-dependency event layer recording **spans** (named, nested,
//! per-thread time intervals: `pool.task`, `typeck`, `encode`, `blast`,
//! `cegis.round`, `sat.solve`, `check-model`, `journal.append`),
//! **counters** (conflicts, propagations, restarts, gates per op kind,
//! CEGIS rounds), **gauges**, and **histogram samples** (learned-clause
//! lengths, queue wait), so every verdict comes with an explainable
//! timeline.
//!
//! # Zero cost when off
//!
//! [`Tracer`] mirrors the `ProofLogger` pattern from the SAT solver: the
//! default tracer is *disabled* and every instrumentation site costs one
//! branch on an `Option` — no clock read, no allocation, no formatting.
//! Arguments that would allocate are passed as closures and only invoked
//! when a sink is installed.
//!
//! ```
//! use alive_trace::{Tracer, MemorySink};
//! use std::sync::Arc;
//!
//! let disabled = Tracer::disabled();
//! assert!(!disabled.enabled());
//! { let _s = disabled.span("sat.solve"); } // one branch, nothing recorded
//!
//! let sink = Arc::new(MemorySink::new());
//! let tracer = Tracer::new(Box::new(Arc::clone(&sink)));
//! {
//!     let _s = tracer.span("sat.solve");
//!     tracer.counter("sat.conflicts", 42);
//! }
//! assert_eq!(sink.snapshot().len(), 3); // start, counter, end
//! ```
//!
//! # Sinks
//!
//! A [`TraceSink`] receives every [`Event`]. Provided sinks:
//!
//! * [`JsonlSink`] — streams CRC-sealed JSONL (`alive-trace/v1`, the same
//!   FNV-1a seal as the verification journal) for `--trace <file>`;
//! * [`MetricsSink`] — in-memory aggregation for the `--metrics` summary
//!   table;
//! * [`MemorySink`] — event capture for tests;
//! * [`TeeSink`] — fan-out to several sinks.
//!
//! The [`stats`] module reads a trace file back, validates nesting and
//! CRCs, and computes per-phase breakdowns, top-N slowest tasks, and
//! flamegraph-style folded stacks (the `alive stats` subcommand).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hist;
pub mod jsonl;
pub mod metrics;
pub mod serve;
pub mod stats;
pub mod telemetry;

pub use hist::Histogram;
pub use jsonl::{
    read_trace, read_trace_lenient, JsonlSink, LenientTrace, TraceEvent, TraceReadError,
    TRACE_SCHEMA,
};
pub use metrics::MetricsSink;
pub use stats::TraceStats;
pub use telemetry::{SeriesSnapshot, Telemetry, TelemetrySnapshot, Windowed};

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What kind of record an [`Event`] is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A span opened (`id`, `parent`, `name`, optional `arg`).
    Start,
    /// A span closed (`id`, `name`; `value` is the duration in µs).
    End,
    /// A monotonic counter increment (`name`; `value` is the delta).
    Counter,
    /// A point-in-time level (`name`; `value` is the level).
    Gauge,
    /// One histogram sample (`name`; `value` is the sample).
    Sample,
    /// An instant event (`name`, optional `arg`; `value` is a payload,
    /// e.g. the elapsed µs of a detached task).
    Mark,
}

impl EventKind {
    /// Stable lower-case label used in the JSONL form.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Start => "start",
            EventKind::End => "end",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Sample => "sample",
            EventKind::Mark => "mark",
        }
    }

    /// Inverse of [`EventKind::as_str`].
    pub fn from_label(s: &str) -> Option<EventKind> {
        Some(match s {
            "start" => EventKind::Start,
            "end" => EventKind::End,
            "counter" => EventKind::Counter,
            "gauge" => EventKind::Gauge,
            "sample" => EventKind::Sample,
            "mark" => EventKind::Mark,
            _ => return None,
        })
    }
}

/// One trace record, as emitted by a live [`Tracer`].
///
/// Span names are `&'static str` by design: instrumentation sites name
/// their phase with a literal, so emitting an event never allocates for
/// the name. `arg` carries the per-instance refinement (typing index,
/// CEGIS round, transform name) and is only built when a sink is
/// installed.
#[derive(Clone, Debug)]
pub struct Event {
    /// Record kind.
    pub kind: EventKind,
    /// Span id (`Start`/`End`; 0 otherwise). Ids are unique per tracer.
    pub id: u64,
    /// Enclosing span id at emission time (0 = root).
    pub parent: u64,
    /// Trace-local thread id of the emitting thread.
    pub tid: u32,
    /// Microseconds since the tracer's epoch.
    pub us: u64,
    /// Phase / metric name (static taxonomy, see docs/OBSERVABILITY.md).
    pub name: &'static str,
    /// Optional per-instance argument (empty = none).
    pub arg: String,
    /// Kind-dependent payload: `End` duration µs, counter delta,
    /// gauge/sample value, mark payload.
    pub value: u64,
}

/// A destination for trace events.
///
/// Sinks are shared across worker threads, so they take `&self` and must
/// be `Send + Sync`; interior mutability is the sink's business.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Records one event. Called on the instrumented thread; keep it
    /// cheap (format-outside-lock, bounded critical sections).
    fn record(&self, event: &Event);

    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

impl<T: TraceSink> TraceSink for Arc<T> {
    fn record(&self, event: &Event) {
        (**self).record(event);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

/// Shared innards of an enabled tracer.
#[derive(Debug)]
struct TracerInner {
    sink: Box<dyn TraceSink>,
    epoch: Instant,
    next_id: AtomicU64,
}

/// The instrumentation handle threaded through the solver stack.
///
/// Cloning is cheap (an `Arc` clone, or a no-op when disabled); every
/// layer that wants to emit events holds its own clone. The disabled
/// tracer — [`Tracer::disabled`], also [`Default`] — reduces every
/// emission site to a single branch.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

/// Process-wide allocator for trace-local thread ids.
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    /// This thread's trace-local id (assigned on first use).
    static TID: Cell<u32> = const { Cell::new(u32::MAX) };
    /// The stack of open span ids on this thread (parent linkage).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// This thread's trace-local id, assigning one on first use.
fn current_tid() -> u32 {
    TID.with(|t| {
        let v = t.get();
        if v != u32::MAX {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

impl Tracer {
    /// The disabled tracer: every site costs one branch, nothing is
    /// recorded.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer recording into `sink`. The epoch (µs origin of every
    /// event) is the moment of this call.
    pub fn new(sink: Box<dyn TraceSink>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                sink,
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
            })),
        }
    }

    /// `true` when a sink is installed. Use to gate argument
    /// construction that [`Tracer`]'s closure-taking methods don't cover.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    #[inline]
    fn now_us(inner: &TracerInner) -> u64 {
        inner.epoch.elapsed().as_micros() as u64
    }

    /// Opens a span named `name`; the span closes (emitting its duration)
    /// when the returned guard drops.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        self.span_with(name, String::new)
    }

    /// Like [`Tracer::span`], with a lazily-built argument (typing index,
    /// transform name, ...). The closure runs only when enabled.
    #[inline]
    pub fn span_with(&self, name: &'static str, arg: impl FnOnce() -> String) -> Span {
        let Some(inner) = &self.inner else {
            return Span { active: None };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied().unwrap_or(0);
            s.push(id);
            parent
        });
        let start_us = Self::now_us(inner);
        inner.sink.record(&Event {
            kind: EventKind::Start,
            id,
            parent,
            tid: current_tid(),
            us: start_us,
            name,
            arg: arg(),
            value: 0,
        });
        Span {
            active: Some(SpanActive {
                inner: Arc::clone(inner),
                id,
                name,
                start_us,
            }),
        }
    }

    /// Increments counter `name` by `delta`.
    #[inline]
    pub fn counter(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            if delta == 0 {
                return;
            }
            self.emit(inner, EventKind::Counter, name, String::new(), delta);
        }
    }

    /// Like [`Tracer::counter`], with a lazily-built sub-key refining the
    /// counter name (e.g. `blast.gates` with the op kind as argument —
    /// aggregators fold the pair into `blast.gates.<arg>`). The closure
    /// runs only when enabled and the delta is non-zero.
    #[inline]
    pub fn counter_with(&self, name: &'static str, arg: impl FnOnce() -> String, delta: u64) {
        if let Some(inner) = &self.inner {
            if delta == 0 {
                return;
            }
            self.emit(inner, EventKind::Counter, name, arg(), delta);
        }
    }

    /// Records gauge `name` at level `value`.
    #[inline]
    pub fn gauge(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            self.emit(inner, EventKind::Gauge, name, String::new(), value);
        }
    }

    /// Records one histogram sample for `name`.
    #[inline]
    pub fn sample(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            self.emit(inner, EventKind::Sample, name, String::new(), value);
        }
    }

    /// Records an instant event with a lazily-built argument and a
    /// numeric payload (e.g. `pool.detach` with the worker id in the
    /// argument and the task's elapsed µs in the payload).
    #[inline]
    pub fn mark(&self, name: &'static str, arg: impl FnOnce() -> String, value: u64) {
        if let Some(inner) = &self.inner {
            self.emit(inner, EventKind::Mark, name, arg(), value);
        }
    }

    fn emit(
        &self,
        inner: &TracerInner,
        kind: EventKind,
        name: &'static str,
        arg: String,
        value: u64,
    ) {
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
        inner.sink.record(&Event {
            kind,
            id: 0,
            parent,
            tid: current_tid(),
            us: Self::now_us(inner),
            name,
            arg,
            value,
        });
    }

    /// Flushes the sink (call before process exit: worker threads
    /// detached by the watchdog keep the tracer alive, so relying on
    /// `Drop` is not enough).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

/// The live half of a span guard.
#[derive(Debug)]
struct SpanActive {
    inner: Arc<TracerInner>,
    id: u64,
    name: &'static str,
    start_us: u64,
}

/// RAII guard for an open span; dropping it emits the `End` event with
/// the measured duration. Obtained from [`Tracer::span`]; a disabled
/// tracer returns an inert guard.
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing"]
pub struct Span {
    active: Option<SpanActive>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        // Pop our id; tolerate (but do not mask) foreign tops, so a leaked
        // guard on another thread cannot poison this thread's stack.
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&a.id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&x| x == a.id) {
                s.remove(pos);
            }
        });
        let end_us = Tracer::now_us(&a.inner);
        a.inner.sink.record(&Event {
            kind: EventKind::End,
            id: a.id,
            parent: 0,
            tid: current_tid(),
            us: end_us,
            name: a.name,
            arg: String::new(),
            value: end_us.saturating_sub(a.start_us),
        });
    }
}

/// An in-memory sink capturing every event (tests, programmatic
/// inspection).
#[derive(Debug, Default)]
pub struct MemorySink {
    events: std::sync::Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of everything recorded so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

/// Fans every event out to several sinks (e.g. a trace file *and* the
/// metrics aggregator).
#[derive(Debug)]
pub struct TeeSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl TeeSink {
    /// Creates a tee over the given sinks.
    pub fn new(sinks: Vec<Box<dyn TraceSink>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl TraceSink for TeeSink {
    fn record(&self, event: &Event) {
        for s in &self.sinks {
            s.record(event);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_allocates_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        let _s = t.span("sat.solve");
        t.counter("sat.conflicts", 3);
        t.sample("sat.learned_len", 9);
        t.mark("pool.detach", || panic!("arg closure must not run"), 1);
        // Nothing to assert beyond "did not panic": there is no sink.
    }

    #[test]
    fn spans_nest_and_carry_parents() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::new(Box::new(Arc::clone(&sink)));
        {
            let _outer = t.span("pool.task");
            {
                let _inner = t.span_with("typing", || "0".to_string());
                t.counter("sat.conflicts", 5);
            }
        }
        let ev = sink.snapshot();
        assert_eq!(ev.len(), 5); // start start counter end end
        assert_eq!(ev[0].kind, EventKind::Start);
        assert_eq!(ev[0].parent, 0);
        assert_eq!(ev[1].kind, EventKind::Start);
        assert_eq!(ev[1].parent, ev[0].id);
        assert_eq!(ev[1].arg, "0");
        assert_eq!(ev[2].kind, EventKind::Counter);
        assert_eq!(ev[2].parent, ev[1].id);
        assert_eq!(ev[2].value, 5);
        assert_eq!(ev[3].kind, EventKind::End);
        assert_eq!(ev[3].id, ev[1].id);
        assert_eq!(ev[4].id, ev[0].id);
        assert!(ev[4].us >= ev[0].us);
    }

    #[test]
    fn zero_counter_deltas_are_suppressed() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::new(Box::new(Arc::clone(&sink)));
        t.counter("sat.restarts", 0);
        assert!(sink.is_empty());
    }

    #[test]
    fn tee_reaches_every_sink() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let t = Tracer::new(Box::new(TeeSink::new(vec![
            Box::new(Arc::clone(&a)),
            Box::new(Arc::clone(&b)),
        ])));
        t.gauge("pool.queue_depth", 7);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn threads_get_distinct_tids() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::new(Box::new(Arc::clone(&sink)));
        let t2 = t.clone();
        std::thread::spawn(move || t2.counter("sat.conflicts", 1))
            .join()
            .unwrap();
        t.counter("sat.conflicts", 1);
        let ev = sink.snapshot();
        assert_eq!(ev.len(), 2);
        assert_ne!(ev[0].tid, ev[1].tid);
    }
}
