//! Offline trace analysis: the engine behind `alive stats`.
//!
//! [`TraceStats::from_events`] replays a parsed trace per thread,
//! validating span nesting (every `end` must match the innermost open
//! span on its thread; spans still open at end-of-trace are legal — a
//! detached worker never gets to close its `pool.task`), and aggregates:
//!
//! * per-phase totals and **self time** (duration minus child spans), so
//!   the phase breakdown sums exactly to the traced wall time instead of
//!   double-counting nested work;
//! * the top-N slowest `pool.task` spans (i.e. slowest transforms);
//! * flamegraph-style folded stacks (`root;child;leaf <self_us>`),
//!   consumable by `inferno` / `flamegraph.pl`;
//! * counter totals and sample histograms.

use crate::hist::Histogram;
use crate::jsonl::TraceEvent;
use crate::EventKind;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Aggregate for one span name.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseAgg {
    /// Completed spans with this name.
    pub count: u64,
    /// Summed full durations (µs); nested phases double-count here.
    pub total_us: u64,
    /// Summed self time (µs): duration minus time spent in child spans.
    /// Self times across all phases partition the traced time exactly.
    pub self_us: u64,
}

/// A nesting violation found while replaying a trace.
#[derive(Debug)]
pub struct NestingError {
    /// Index of the offending event (0-based, in file order).
    pub event: usize,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for NestingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace event {}: {}", self.event, self.detail)
    }
}

impl std::error::Error for NestingError {}

/// One open span during replay.
#[derive(Debug)]
struct Open {
    id: u64,
    name: String,
    arg: String,
    child_us: u64,
    path: String,
}

/// The aggregated view of one trace, produced by
/// [`TraceStats::from_events`].
#[derive(Debug, Default)]
pub struct TraceStats {
    /// Per-span-name aggregates, keyed by name.
    pub phases: BTreeMap<String, PhaseAgg>,
    /// Completed `pool.task` spans as `(transform, duration µs)`,
    /// slowest first.
    pub tasks: Vec<(String, u64)>,
    /// Folded stacks: `a;b;c` path → summed self time (µs).
    pub folded: BTreeMap<String, u64>,
    /// Counter name → summed deltas.
    pub counters: BTreeMap<String, u64>,
    /// Sample name → histogram of values.
    pub samples: BTreeMap<String, Histogram>,
    /// Spans never closed (detached workers, torn runs).
    pub open_spans: usize,
    /// Span of event timestamps (first to last, µs).
    pub wall_us: u64,
}

impl TraceStats {
    /// Replays `events`, checking nesting per thread and aggregating.
    pub fn from_events(events: &[TraceEvent]) -> Result<TraceStats, NestingError> {
        let mut stats = TraceStats::default();
        let mut stacks: HashMap<u32, Vec<Open>> = HashMap::new();
        let mut first_us = None;
        let mut last_us = 0u64;
        for (i, ev) in events.iter().enumerate() {
            first_us.get_or_insert(ev.us);
            last_us = last_us.max(ev.us);
            let stack = stacks.entry(ev.tid).or_default();
            match ev.kind {
                EventKind::Start => {
                    let top_id = stack.last().map(|o| o.id).unwrap_or(0);
                    if ev.parent != top_id {
                        return Err(NestingError {
                            event: i,
                            detail: format!(
                                "span {} '{}' opened under parent {} but the innermost \
                                 open span on tid {} is {}",
                                ev.id, ev.name, ev.parent, ev.tid, top_id
                            ),
                        });
                    }
                    let path = match stack.last() {
                        Some(parent) => format!("{};{}", parent.path, ev.name),
                        None => ev.name.clone(),
                    };
                    stack.push(Open {
                        id: ev.id,
                        name: ev.name.clone(),
                        arg: ev.arg.clone(),
                        child_us: 0,
                        path,
                    });
                }
                EventKind::End => {
                    let Some(top) = stack.pop() else {
                        return Err(NestingError {
                            event: i,
                            detail: format!(
                                "end of span {} '{}' on tid {} with no span open",
                                ev.id, ev.name, ev.tid
                            ),
                        });
                    };
                    if top.id != ev.id || top.name != ev.name {
                        return Err(NestingError {
                            event: i,
                            detail: format!(
                                "end of span {} '{}' does not match innermost open \
                                 span {} '{}' on tid {}",
                                ev.id, ev.name, top.id, top.name, ev.tid
                            ),
                        });
                    }
                    let dur = ev.value;
                    let self_us = dur.saturating_sub(top.child_us);
                    let agg = stats.phases.entry(top.name.clone()).or_default();
                    agg.count += 1;
                    agg.total_us += dur;
                    agg.self_us += self_us;
                    *stats.folded.entry(top.path.clone()).or_insert(0) += self_us;
                    // Work units for the slowest-list: a pool task (arg =
                    // transform name) or a serve request (arg = request
                    // id). Without this, serve-side spans would only show
                    // up as anonymous phase rows.
                    if top.name == "pool.task" || top.name == "serve.request" {
                        let label = if top.arg.is_empty() {
                            format!("task-{}", top.id)
                        } else {
                            top.arg
                        };
                        stats.tasks.push((label, dur));
                    }
                    if let Some(parent) = stack.last_mut() {
                        parent.child_us += dur;
                    }
                }
                EventKind::Counter => {
                    let key = if ev.arg.is_empty() {
                        ev.name.clone()
                    } else {
                        format!("{}.{}", ev.name, ev.arg)
                    };
                    *stats.counters.entry(key).or_insert(0) += ev.value;
                }
                EventKind::Gauge | EventKind::Mark => {}
                EventKind::Sample => {
                    stats
                        .samples
                        .entry(ev.name.clone())
                        .or_default()
                        .record(ev.value);
                }
            }
        }
        stats.open_spans = stacks.values().map(|s| s.len()).sum();
        stats.wall_us = last_us.saturating_sub(first_us.unwrap_or(0));
        stats
            .tasks
            .sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(stats)
    }

    /// Aggregates only the events belonging to one request: the
    /// `serve.request` span whose `arg` equals `rid` (or, for batch
    /// items, the per-item span tagged `<batch-id>#<index>`) and
    /// everything nested inside it on the same thread. Returns
    /// `Ok(None)` when no span carries that request id.
    ///
    /// The subtree is carved out by span id: once the tagged start is
    /// seen on a thread, every event on that thread is included until
    /// the matching end closes it. Multiple spans with the same rid
    /// (a retried request) all contribute.
    pub fn for_request(
        events: &[TraceEvent],
        rid: &str,
    ) -> Result<Option<TraceStats>, NestingError> {
        // tid → id of the open serve.request span being captured.
        let mut capture: HashMap<u32, u64> = HashMap::new();
        let mut picked: Vec<TraceEvent> = Vec::new();
        for ev in events {
            match capture.get(&ev.tid).copied() {
                Some(root_id) => {
                    picked.push(ev.clone());
                    if ev.kind == EventKind::End && ev.id == root_id {
                        capture.remove(&ev.tid);
                    }
                }
                None => {
                    if ev.kind == EventKind::Start && ev.name == "serve.request" && ev.arg == rid {
                        capture.insert(ev.tid, ev.id);
                        picked.push(ev.clone());
                    }
                }
            }
        }
        if picked.is_empty() {
            return Ok(None);
        }
        // The captured roots had parents in the full trace (e.g. a batch
        // item's span under the connection's request span); reparent them
        // so the replay's nesting check accepts the carved-out subtree.
        let roots: std::collections::HashSet<u64> = picked
            .iter()
            .filter(|e| e.kind == EventKind::Start && e.name == "serve.request" && e.arg == rid)
            .map(|e| e.id)
            .collect();
        for ev in &mut picked {
            if ev.kind == EventKind::Start && roots.contains(&ev.id) {
                ev.parent = 0;
            }
        }
        TraceStats::from_events(&picked).map(Some)
    }

    /// Total traced self time across all phases (µs). Because self times
    /// partition span time, this equals the summed duration of all
    /// completed root spans.
    pub fn total_self_us(&self) -> u64 {
        self.phases.values().map(|a| a.self_us).sum()
    }

    /// Folded-stack output (`path self_us` per line, sorted by path),
    /// ready for `inferno` / `flamegraph.pl`.
    pub fn folded_output(&self) -> String {
        let mut out = String::new();
        for (path, us) in &self.folded {
            out.push_str(&format!("{path} {us}\n"));
        }
        out
    }

    /// The human-readable report: time by phase (self-time percentages),
    /// top-`n` slowest tasks, counters, and open-span note.
    pub fn render(&self, n: usize) -> String {
        let mut out = String::new();
        let total = self.total_self_us().max(1);
        out.push_str(&format!(
            "{:<18} {:>8} {:>12} {:>12} {:>7}\n",
            "phase", "count", "total", "self", "self%"
        ));
        let mut phases: Vec<_> = self.phases.iter().collect();
        phases.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then(a.0.cmp(b.0)));
        for (name, agg) in phases {
            out.push_str(&format!(
                "{:<18} {:>8} {:>10}us {:>10}us {:>6.1}%\n",
                name,
                agg.count,
                agg.total_us,
                agg.self_us,
                agg.self_us as f64 * 100.0 / total as f64,
            ));
        }
        out.push_str(&format!(
            "\ntraced: {}us across {} phases (wall span {}us)\n",
            self.total_self_us(),
            self.phases.len(),
            self.wall_us,
        ));
        if !self.tasks.is_empty() {
            out.push_str(&format!("\nslowest transforms (top {n}):\n"));
            for (name, dur) in self.tasks.iter().take(n) {
                out.push_str(&format!("  {dur:>10}us  {name}\n"));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("\n{:<28} {:>12}\n", "counter", "total"));
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<28} {v:>12}\n"));
            }
        }
        if !self.samples.is_empty() {
            out.push_str(&format!(
                "\n{:<22} {:>8} {:>8} {:>8} {:>8}\n",
                "histogram", "count", "mean", "p95", "max"
            ));
            for (name, h) in &self.samples {
                out.push_str(&format!(
                    "{:<22} {:>8} {:>8} {:>8} {:>8}\n",
                    name,
                    h.count(),
                    h.mean().unwrap_or(0.0).round() as u64,
                    h.quantile(0.95).unwrap_or(0),
                    h.max().unwrap_or(0),
                ));
            }
        }
        if self.open_spans > 0 {
            out.push_str(&format!(
                "\nnote: {} span(s) never closed (detached or interrupted workers)\n",
                self.open_spans
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        kind: EventKind,
        id: u64,
        parent: u64,
        tid: u32,
        us: u64,
        name: &str,
        value: u64,
    ) -> TraceEvent {
        TraceEvent {
            kind,
            id,
            parent,
            tid,
            us,
            name: name.to_string(),
            arg: String::new(),
            value,
        }
    }

    #[test]
    fn self_time_partitions_root_duration() {
        // pool.task(100us) containing sat.solve(60us): self 40 + 60.
        let mut start = ev(EventKind::Start, 1, 0, 0, 0, "pool.task", 0);
        start.arg = "mul_shift".to_string();
        let events = vec![
            start,
            ev(EventKind::Start, 2, 1, 0, 10, "sat.solve", 0),
            ev(EventKind::End, 2, 0, 0, 70, "sat.solve", 60),
            ev(EventKind::End, 1, 0, 0, 100, "pool.task", 100),
        ];
        let stats = TraceStats::from_events(&events).unwrap();
        assert_eq!(stats.phases["pool.task"].self_us, 40);
        assert_eq!(stats.phases["sat.solve"].self_us, 60);
        assert_eq!(stats.total_self_us(), 100);
        assert_eq!(stats.tasks, vec![("mul_shift".to_string(), 100)]);
        assert_eq!(stats.folded["pool.task"], 40);
        assert_eq!(stats.folded["pool.task;sat.solve"], 60);
        let folded = stats.folded_output();
        assert!(folded.contains("pool.task;sat.solve 60\n"));
        let report = stats.render(5);
        assert!(report.contains("sat.solve"));
        assert!(report.contains("mul_shift"));
    }

    #[test]
    fn mismatched_end_is_rejected() {
        let events = vec![
            ev(EventKind::Start, 1, 0, 0, 0, "pool.task", 0),
            ev(EventKind::Start, 2, 1, 0, 1, "typeck", 0),
            ev(EventKind::End, 1, 0, 0, 2, "pool.task", 2),
        ];
        let err = TraceStats::from_events(&events).unwrap_err();
        assert_eq!(err.event, 2);
        assert!(err.detail.contains("does not match"));
    }

    #[test]
    fn end_without_start_is_rejected() {
        let events = vec![ev(EventKind::End, 1, 0, 0, 2, "typeck", 2)];
        assert!(TraceStats::from_events(&events).is_err());
    }

    #[test]
    fn threads_nest_independently_and_open_spans_are_legal() {
        let events = vec![
            ev(EventKind::Start, 1, 0, 0, 0, "pool.task", 0),
            ev(EventKind::Start, 2, 0, 1, 1, "pool.task", 0),
            ev(EventKind::End, 1, 0, 0, 5, "pool.task", 5),
            // Span 2 never ends: a detached worker. Legal.
        ];
        let stats = TraceStats::from_events(&events).unwrap();
        assert_eq!(stats.open_spans, 1);
        assert_eq!(stats.phases["pool.task"].count, 1);
        assert!(stats.render(3).contains("never closed"));
    }

    #[test]
    fn for_request_carves_out_one_request_subtree() {
        let mut r1 = ev(EventKind::Start, 1, 0, 0, 0, "serve.request", 0);
        r1.arg = "c1-1".to_string();
        let mut r2 = ev(EventKind::Start, 4, 0, 1, 5, "serve.request", 0);
        r2.arg = "c1-2".to_string();
        let events = vec![
            r1,
            ev(EventKind::Start, 2, 1, 0, 1, "serve.lookup", 0),
            ev(EventKind::End, 2, 0, 0, 3, "serve.lookup", 2),
            ev(EventKind::Start, 3, 1, 0, 4, "sat.solve", 0),
            ev(EventKind::End, 3, 0, 0, 40, "sat.solve", 36),
            ev(EventKind::End, 1, 0, 0, 50, "serve.request", 50),
            // A different request on another thread: must be excluded.
            r2,
            ev(EventKind::End, 4, 0, 1, 9, "serve.request", 4),
        ];
        let stats = TraceStats::for_request(&events, "c1-1").unwrap().unwrap();
        assert_eq!(stats.phases["serve.request"].count, 1);
        assert_eq!(stats.phases["serve.lookup"].total_us, 2);
        assert_eq!(stats.phases["sat.solve"].total_us, 36);
        assert_eq!(stats.phases["serve.request"].self_us, 50 - 2 - 36);
        assert_eq!(stats.tasks, vec![("c1-1".to_string(), 50)]);
        assert!(TraceStats::for_request(&events, "nope").unwrap().is_none());
        // Full-trace view lists both requests as work units.
        let all = TraceStats::from_events(&events).unwrap();
        assert_eq!(all.tasks.len(), 2);
    }

    #[test]
    fn counters_and_samples_aggregate() {
        let mut c = ev(EventKind::Counter, 0, 0, 0, 1, "sat.conflicts", 7);
        c.parent = 0;
        let events = vec![
            c.clone(),
            ev(EventKind::Counter, 0, 0, 1, 2, "sat.conflicts", 3),
            ev(EventKind::Sample, 0, 0, 0, 3, "sat.learned_len", 9),
        ];
        let stats = TraceStats::from_events(&events).unwrap();
        assert_eq!(stats.counters["sat.conflicts"], 10);
        assert_eq!(stats.samples["sat.learned_len"].count(), 1);
    }
}
