//! The `alive-trace/v1` JSONL stream: CRC-sealed line-oriented trace
//! files written by [`JsonlSink`] and read back by [`read_trace`].
//!
//! The framing mirrors the verification journal: every line is a single
//! JSON object whose last field is `"crc"`, the FNV-1a 64 hash of the
//! bytes before it, rendered as 16 lower-case hex digits. The first line
//! is a header naming the schema; each following line is one event:
//!
//! ```json
//! {"trace":"alive-trace/v1","crc":"..."}
//! {"ev":"start","id":1,"parent":0,"tid":0,"us":12,"name":"pool.task","arg":"mul_shift","crc":"..."}
//! {"ev":"counter","tid":0,"us":90,"name":"sat.conflicts","arg":"","value":17,"crc":"..."}
//! {"ev":"end","id":1,"tid":0,"us":951,"name":"pool.task","value":939,"crc":"..."}
//! ```
//!
//! `start`, `counter`, and `mark` lines carry `arg` (a counter's arg is
//! a sub-key, e.g. the op kind under `blast.gates`); `end` carries the
//! duration in `value`; `counter`/`gauge`/`sample` carry their
//! delta/level/sample in `value`. Field order is fixed and parsing is
//! strict — any deviation
//! (reordered keys, truncated line, bad CRC) is a hard error with the
//! offending line number, which is what the CI schema-validation job and
//! `alive stats` rely on.

use crate::{Event, EventKind, TraceSink};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Schema tag carried in the header line of every trace file.
pub const TRACE_SCHEMA: &str = "alive-trace/v1";

/// FNV-1a 64-bit hash (same parameters as the journal's line seal).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends the CRC field and closing brace to a partial JSON object.
fn seal(body: String) -> String {
    let crc = fnv1a64(body.as_bytes());
    format!("{body},\"crc\":\"{crc:016x}\"}}")
}

/// Strips and verifies the CRC suffix, returning the body.
fn unseal(line: &str) -> Option<&str> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    let rest = line.strip_suffix("\"}")?;
    let marker = ",\"crc\":\"";
    let pos = rest.rfind(marker)?;
    let (body, crc_hex) = rest.split_at(pos);
    let crc_hex = &crc_hex[marker.len()..];
    if crc_hex.len() != 16 {
        return None;
    }
    let want = u64::from_str_radix(crc_hex, 16).ok()?;
    if fnv1a64(body.as_bytes()) != want {
        return None;
    }
    Some(body)
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`json_escape`]; `None` on a malformed escape.
fn json_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Renders one event as a sealed JSONL line (no trailing newline).
fn event_line(ev: &Event) -> String {
    let mut body = format!("{{\"ev\":\"{}\"", ev.kind.as_str());
    match ev.kind {
        EventKind::Start => {
            body.push_str(&format!(
                ",\"id\":{},\"parent\":{},\"tid\":{},\"us\":{},\"name\":\"{}\",\"arg\":\"{}\"",
                ev.id,
                ev.parent,
                ev.tid,
                ev.us,
                json_escape(ev.name),
                json_escape(&ev.arg),
            ));
        }
        EventKind::End => {
            body.push_str(&format!(
                ",\"id\":{},\"tid\":{},\"us\":{},\"name\":\"{}\",\"value\":{}",
                ev.id,
                ev.tid,
                ev.us,
                json_escape(ev.name),
                ev.value,
            ));
        }
        EventKind::Gauge | EventKind::Sample => {
            body.push_str(&format!(
                ",\"tid\":{},\"us\":{},\"name\":\"{}\",\"value\":{}",
                ev.tid,
                ev.us,
                json_escape(ev.name),
                ev.value,
            ));
        }
        EventKind::Counter | EventKind::Mark => {
            body.push_str(&format!(
                ",\"tid\":{},\"us\":{},\"name\":\"{}\",\"arg\":\"{}\",\"value\":{}",
                ev.tid,
                ev.us,
                json_escape(ev.name),
                json_escape(&ev.arg),
                ev.value,
            ));
        }
    }
    seal(body)
}

/// A [`TraceSink`] streaming sealed JSONL to a file.
///
/// Lines are formatted outside the lock; the critical section is one
/// buffered write. I/O errors after creation are swallowed (tracing is
/// advisory and must never take the verification run down with it), but
/// the first one latches and is reported by [`JsonlSink::had_error`].
///
/// The sink follows the workspace durability discipline (mirrored here
/// locally — this crate is dependency-free and sits *below* the
/// `alive_verifier::durable` seam): the trace file's directory entry is
/// fsync'd at creation, [`TraceSink::flush`] follows the buffer flush
/// with `sync_data`, and neither result is ever silently dropped — both
/// latch into [`JsonlSink::had_error`].
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
    errored: std::sync::atomic::AtomicBool,
}

/// Fsyncs the directory containing `path` so the freshly created trace
/// file's *name* is durable, not just its contents.
fn fsync_parent(path: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

impl JsonlSink {
    /// Creates (truncating) the trace file, writes the header line, and
    /// makes the file's directory entry durable.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        let header = seal(format!("{{\"trace\":\"{TRACE_SCHEMA}\""));
        writeln!(out, "{header}")?;
        fsync_parent(path)?;
        Ok(JsonlSink {
            out: Mutex::new(out),
            errored: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// `true` if any write or flush failed since creation.
    pub fn had_error(&self) -> bool {
        self.errored.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn note(&self, r: std::io::Result<()>) {
        if r.is_err() {
            self.errored
                .store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = event_line(event);
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        self.note(writeln!(out, "{line}"));
    }

    fn flush(&self) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        // Flush the userspace buffer, then fsync: a flushed-but-unsynced
        // trace still evaporates on power loss. Both results latch.
        self.note(out.flush());
        self.note(out.get_ref().sync_data());
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        // Best-effort fallback; the CLI flushes explicitly because
        // detached worker threads can keep the sink alive past exit.
        TraceSink::flush(self);
    }
}

/// One parsed trace event (owned strings, unlike the live [`Event`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Record kind.
    pub kind: EventKind,
    /// Span id (`Start`/`End`; 0 otherwise).
    pub id: u64,
    /// Enclosing span id at emission (`Start` only; 0 = root).
    pub parent: u64,
    /// Trace-local thread id.
    pub tid: u32,
    /// Microseconds since the trace epoch.
    pub us: u64,
    /// Phase / metric name.
    pub name: String,
    /// Optional argument (`Start`/`Mark`; empty = none).
    pub arg: String,
    /// Kind-dependent payload (see [`Event::value`]).
    pub value: u64,
}

/// Why a trace file failed to load.
#[derive(Debug)]
pub enum TraceReadError {
    /// The file could not be opened or read.
    Io(std::io::Error),
    /// The first line is missing or is not a valid `alive-trace/v1`
    /// header.
    BadHeader,
    /// Line `.0` (1-based) failed CRC verification or schema parsing.
    BadLine(usize),
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "cannot read trace: {e}"),
            TraceReadError::BadHeader => {
                write!(
                    f,
                    "not an {TRACE_SCHEMA} trace (bad or missing header line)"
                )
            }
            TraceReadError::BadLine(n) => {
                write!(
                    f,
                    "trace line {n}: bad CRC or malformed {TRACE_SCHEMA} record"
                )
            }
        }
    }
}

impl std::error::Error for TraceReadError {}

impl From<std::io::Error> for TraceReadError {
    fn from(e: std::io::Error) -> TraceReadError {
        TraceReadError::Io(e)
    }
}

/// Strict cursor over a record body; every helper returns `None` on any
/// deviation from the exact written format.
struct Scanner<'a> {
    rest: &'a str,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str) -> Scanner<'a> {
        Scanner { rest: s }
    }

    fn lit(&mut self, lit: &str) -> Option<()> {
        self.rest = self.rest.strip_prefix(lit)?;
        Some(())
    }

    fn number(&mut self) -> Option<u64> {
        let end = self
            .rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.rest.len());
        if end == 0 {
            return None;
        }
        let (digits, rest) = self.rest.split_at(end);
        self.rest = rest;
        digits.parse().ok()
    }

    /// The body of a JSON string literal up to its closing quote
    /// (respecting escapes), unescaped.
    fn string_body(&mut self) -> Option<String> {
        let bytes = self.rest.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'"' => {
                    let (raw, rest) = self.rest.split_at(i);
                    self.rest = &rest[1..];
                    return json_unescape(raw);
                }
                b'\\' => i += 2,
                _ => i += 1,
            }
        }
        None
    }

    fn at_end(&self) -> bool {
        self.rest.is_empty()
    }
}

/// Parses one sealed line (without its trailing newline) into an event.
pub(crate) fn parse_event_line(line: &str) -> Option<TraceEvent> {
    let body = unseal(line)?;
    let mut s = Scanner::new(body);
    s.lit("{\"ev\":\"")?;
    let kind_label = s.string_body()?;
    let kind = EventKind::from_label(&kind_label)?;
    let mut ev = TraceEvent {
        kind,
        id: 0,
        parent: 0,
        tid: 0,
        us: 0,
        name: String::new(),
        arg: String::new(),
        value: 0,
    };
    match kind {
        EventKind::Start => {
            s.lit(",\"id\":")?;
            ev.id = s.number()?;
            s.lit(",\"parent\":")?;
            ev.parent = s.number()?;
            s.lit(",\"tid\":")?;
            ev.tid = u32::try_from(s.number()?).ok()?;
            s.lit(",\"us\":")?;
            ev.us = s.number()?;
            s.lit(",\"name\":\"")?;
            ev.name = s.string_body()?;
            s.lit(",\"arg\":\"")?;
            ev.arg = s.string_body()?;
        }
        EventKind::End => {
            s.lit(",\"id\":")?;
            ev.id = s.number()?;
            s.lit(",\"tid\":")?;
            ev.tid = u32::try_from(s.number()?).ok()?;
            s.lit(",\"us\":")?;
            ev.us = s.number()?;
            s.lit(",\"name\":\"")?;
            ev.name = s.string_body()?;
            s.lit(",\"value\":")?;
            ev.value = s.number()?;
        }
        EventKind::Gauge | EventKind::Sample => {
            s.lit(",\"tid\":")?;
            ev.tid = u32::try_from(s.number()?).ok()?;
            s.lit(",\"us\":")?;
            ev.us = s.number()?;
            s.lit(",\"name\":\"")?;
            ev.name = s.string_body()?;
            s.lit(",\"value\":")?;
            ev.value = s.number()?;
        }
        EventKind::Counter | EventKind::Mark => {
            s.lit(",\"tid\":")?;
            ev.tid = u32::try_from(s.number()?).ok()?;
            s.lit(",\"us\":")?;
            ev.us = s.number()?;
            s.lit(",\"name\":\"")?;
            ev.name = s.string_body()?;
            s.lit(",\"arg\":\"")?;
            ev.arg = s.string_body()?;
            s.lit(",\"value\":")?;
            ev.value = s.number()?;
        }
    }
    if !s.at_end() {
        return None;
    }
    Some(ev)
}

/// Checks that `line` is the schema header.
fn parse_header(line: &str) -> Option<()> {
    let body = unseal(line)?;
    let mut s = Scanner::new(body);
    s.lit("{\"trace\":\"")?;
    let schema = s.string_body()?;
    if schema != TRACE_SCHEMA || !s.at_end() {
        return None;
    }
    Some(())
}

/// Loads a trace file, verifying the header and every line's CRC and
/// schema. Strict: the first malformed line aborts the load (unlike the
/// journal there is no torn-tail tolerance — a trace that fails here is
/// a bug or an unflushed write, and the CI validation job wants to know).
pub fn read_trace(path: &Path) -> Result<Vec<TraceEvent>, TraceReadError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut events = Vec::new();
    let mut lines = reader.lines();
    let header = lines.next().ok_or(TraceReadError::BadHeader)??;
    parse_header(&header).ok_or(TraceReadError::BadHeader)?;
    for (i, line) in lines.enumerate() {
        let line = line?;
        let lineno = i + 2;
        if line.is_empty() {
            continue;
        }
        let ev = parse_event_line(&line).ok_or(TraceReadError::BadLine(lineno))?;
        events.push(ev);
    }
    Ok(events)
}

/// Result of a [lenient](read_trace_lenient) trace load: every event that
/// was readable before the first defect, plus a human-readable warning if
/// anything was wrong with the file.
#[derive(Debug)]
pub struct LenientTrace {
    /// Events read before the first malformed line (all of them if the
    /// file is intact).
    pub events: Vec<TraceEvent>,
    /// Present when the file was empty, missing its header, or had a torn
    /// or corrupt tail; describes what was skipped.
    pub warning: Option<String>,
}

/// Loads a trace file tolerantly: an empty file, a missing/corrupt header,
/// or a torn tail (e.g. the process died mid-write) yields the readable
/// prefix plus a warning instead of an error. *Mid-file* corruption — a
/// bad record with valid records after it — is still refused loudly
/// ([`TraceReadError::BadLine`]): that is damage, not an interrupted
/// write, and silently averaging over half a trace would mislead.
/// Interactive consumers (`alive stats`) use this; CI validation keeps
/// the strict [`read_trace`].
pub fn read_trace_lenient(path: &Path) -> Result<LenientTrace, TraceReadError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut events = Vec::new();
    let mut lines = reader.lines();
    let header = match lines.next() {
        None => {
            return Ok(LenientTrace {
                events,
                warning: Some("trace file is empty".into()),
            })
        }
        Some(Err(e)) => {
            return Ok(LenientTrace {
                events,
                warning: Some(format!("trace header unreadable ({e}); no events loaded")),
            })
        }
        Some(Ok(h)) => h,
    };
    if parse_header(&header).is_none() {
        return Ok(LenientTrace {
            events,
            warning: Some(format!(
                "not an {TRACE_SCHEMA} trace (bad or truncated header line); no events loaded"
            )),
        });
    }
    let mut numbered = lines.enumerate();
    while let Some((i, line)) = numbered.next() {
        let lineno = i + 2;
        let torn = |what: String, events: Vec<TraceEvent>| LenientTrace {
            warning: Some(format!(
                "{what} at line {lineno}; showing the {} events before it",
                events.len()
            )),
            events,
        };
        let line = match line {
            Ok(l) => l,
            Err(e) => return Ok(torn(format!("unreadable trace data ({e})"), events)),
        };
        if line.is_empty() {
            continue;
        }
        match parse_event_line(&line) {
            Some(ev) => events.push(ev),
            None => {
                // Torn tail vs. mid-file damage: if any *later* line still
                // parses, the writer did not die here — the file is
                // corrupt, and the prefix would be a misleading sample.
                for (_, later) in numbered.by_ref() {
                    let Ok(later) = later else { break };
                    if !later.is_empty() && parse_event_line(&later).is_some() {
                        return Err(TraceReadError::BadLine(lineno));
                    }
                }
                // A torn tail from an interrupted writer: keep the prefix.
                return Ok(torn("torn or corrupt trace record".into(), events));
            }
        }
    }
    Ok(LenientTrace {
        events,
        warning: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;
    use std::sync::Arc;

    fn roundtrip(ev: &Event) -> TraceEvent {
        parse_event_line(&event_line(ev)).expect("line must round-trip")
    }

    fn base(kind: EventKind) -> Event {
        Event {
            kind,
            id: 7,
            parent: 3,
            tid: 2,
            us: 12345,
            name: "pool.task",
            arg: String::new(),
            value: 99,
        }
    }

    #[test]
    fn every_kind_round_trips() {
        for kind in [
            EventKind::Start,
            EventKind::End,
            EventKind::Counter,
            EventKind::Gauge,
            EventKind::Sample,
            EventKind::Mark,
        ] {
            let mut ev = base(kind);
            if matches!(kind, EventKind::Start | EventKind::Mark) {
                ev.arg = "weird \"arg\"\\with\nescapes\u{1}".to_string();
            }
            let got = roundtrip(&ev);
            assert_eq!(got.kind, kind);
            assert_eq!(got.name, ev.name);
            assert_eq!(got.arg, ev.arg);
            match kind {
                EventKind::Start => {
                    assert_eq!((got.id, got.parent), (ev.id, ev.parent));
                }
                EventKind::End => {
                    assert_eq!((got.id, got.value), (ev.id, ev.value));
                }
                _ => assert_eq!(got.value, ev.value),
            }
            assert_eq!((got.tid, got.us), (ev.tid, ev.us));
        }
    }

    #[test]
    fn corrupted_lines_are_rejected() {
        let line = event_line(&base(EventKind::Counter));
        assert!(parse_event_line(&line).is_some());
        // Flip a digit inside the body: CRC must catch it.
        let tampered = line.replacen("12345", "12346", 1);
        assert!(parse_event_line(&tampered).is_none());
        // Truncation must be caught too.
        assert!(parse_event_line(&line[..line.len() - 4]).is_none());
    }

    #[test]
    fn file_round_trip_via_sink() {
        let dir = std::env::temp_dir().join(format!("alive-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        {
            let sink = Arc::new(JsonlSink::create(&path).unwrap());
            let t = Tracer::new(Box::new(Arc::clone(&sink)));
            {
                let _s = t.span_with("pool.task", || "add_nsw".to_string());
                t.counter("sat.conflicts", 4);
            }
            t.flush();
            assert!(!sink.had_error());
        }
        let events = read_trace(&path).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::Start);
        assert_eq!(events[0].arg, "add_nsw");
        assert_eq!(events[2].kind, EventKind::End);
        assert_eq!(events[2].id, events[0].id);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_or_bad_header_is_rejected() {
        let dir = std::env::temp_dir().join(format!("alive-trace-hdr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "{\"journal\":\"alive-journal/v1\"}\n").unwrap();
        assert!(matches!(read_trace(&path), Err(TraceReadError::BadHeader)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
