//! Log2-bucketed histograms for metric samples.
//!
//! Samples (learned-clause lengths, queue wait times, ...) span many
//! orders of magnitude, so the metrics aggregator buckets them by the
//! power of two they fall in: bucket 0 holds exactly `0`, bucket `i`
//! (1 ≤ i ≤ 64) holds `2^(i-1) ..= 2^i - 1` (bucket 64's upper bound
//! saturates at `u64::MAX`). Bucketing round-trips: every sample lies
//! inside the bounds of the bucket it is assigned to — the property the
//! proptest in `tests/hist_prop.rs` pins down.

/// Number of buckets: one for zero plus one per bit position.
pub const NUM_BUCKETS: usize = 65;

/// A fixed-size log2 histogram of `u64` samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a sample falls in: 0 for `0`, else
    /// `64 - leading_zeros(v)` (the position of the highest set bit,
    /// one-based).
    pub fn index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive `(lo, hi)` range of samples stored in bucket `i`.
    ///
    /// # Panics
    /// If `i >= NUM_BUCKETS`.
    pub fn bounds(i: usize) -> (u64, u64) {
        assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
        if i == 0 {
            (0, 0)
        } else if i == 64 {
            (1 << 63, u64::MAX)
        } else {
            (1 << (i - 1), (1 << i) - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Number of samples in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// An upper bound on the `q`-quantile (0.0 ..= 1.0): the inclusive
    /// high end of the first bucket whose cumulative count reaches
    /// `q * count`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        quantile_over(&self.buckets, self.count, self.max, q)
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, low to high.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = Self::bounds(i);
                (lo, hi, n)
            })
            .collect()
    }
}

/// Quantile over a raw log2 bucket array: the inclusive high end of the
/// first bucket whose cumulative count reaches `ceil(q * count)`,
/// capped at `max`. Shared by [`Histogram::quantile`] and the atomic
/// windowed telemetry registry, which snapshots its `AtomicU64` buckets
/// into a plain array before asking for percentiles.
pub fn quantile_over(buckets: &[u64; NUM_BUCKETS], count: u64, max: u64, q: f64) -> Option<u64> {
    if count == 0 {
        return None;
    }
    let target = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= target {
            return Some(Histogram::bounds(i).1.min(max));
        }
    }
    Some(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_matches_bounds_at_edges() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let i = Histogram::index(v);
            let (lo, hi) = Histogram::bounds(i);
            assert!(lo <= v && v <= hi, "{v} not in bucket {i} = [{lo}, {hi}]");
        }
    }

    #[test]
    fn buckets_partition_the_domain() {
        // Consecutive buckets tile u64 with no gap or overlap.
        for i in 0..NUM_BUCKETS - 1 {
            let (_, hi) = Histogram::bounds(i);
            let (lo_next, _) = Histogram::bounds(i + 1);
            assert_eq!(hi + 1, lo_next);
        }
        assert_eq!(Histogram::bounds(NUM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn summary_statistics() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.mean(), Some(26.5));
        // p50 upper bound comes from bucket [2,3]; p100 is capped at max.
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    fn nonzero_buckets_report_ranges() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(5);
        h.record(6);
        let b = h.nonzero_buckets();
        assert_eq!(b, vec![(0, 0, 1), (4, 7, 2)]);
    }
}
