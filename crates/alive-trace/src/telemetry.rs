//! Windowed, lock-cheap latency telemetry for the serve daemon.
//!
//! The daemon records one `u64` microsecond sample per request outcome
//! (hit, miss, join, ...) into a [`Windowed`] series: an atomic log2
//! histogram for lifetime percentiles plus a fixed ring of time slots
//! for sliding-window rates. Recording is a handful of relaxed atomic
//! adds — no locks, no allocation — so it stays on even when tracing
//! is off.
//!
//! Windows work by slot rotation: time is divided into `slot_ms`-wide
//! slots, each mapping onto `ring[slot_index % SLOTS]`. A slot tags
//! itself with the slot index it currently holds; the first recorder
//! to arrive in a new slot index CAS-claims the slot and zeroes it.
//! A snapshot sums only slots whose tag falls inside the window, so
//! old traffic ages out one slot at a time. Under rotation a racing
//! recorder can land a sample in a slot mid-reset — windowed counts
//! are operator telemetry, approximate by design; lifetime counts are
//! exact.
//!
//! All clock plumbing takes an explicit `now_ms` so tests drive the
//! window deterministically ([`Telemetry`] owns the real clock).

use crate::hist::{quantile_over, Histogram, NUM_BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Slots per sliding window.
pub const SLOTS: usize = 6;

/// Default slot width: 10 s × 6 slots = a one-minute window.
pub const DEFAULT_SLOT_MS: u64 = 10_000;

/// One ring slot: a sample count tagged with the slot index it holds.
#[derive(Debug)]
struct Slot {
    /// Which absolute slot index (`now_ms / slot_ms`) this slot's count
    /// belongs to. A stale tag means the slot has aged out of the window.
    tag: AtomicU64,
    count: AtomicU64,
}

/// One latency series: lifetime log2 histogram + sliding-window ring.
#[derive(Debug)]
pub struct Windowed {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    ring: [Slot; SLOTS],
    slot_ms: u64,
}

/// Point-in-time summary of one [`Windowed`] series.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// Lifetime sample count.
    pub count: u64,
    /// Lifetime mean, microseconds (0 when empty).
    pub mean_us: u64,
    /// Lifetime p50 upper bound, microseconds.
    pub p50_us: u64,
    /// Lifetime p90 upper bound, microseconds.
    pub p90_us: u64,
    /// Lifetime p99 upper bound, microseconds.
    pub p99_us: u64,
    /// Lifetime maximum, microseconds.
    pub max_us: u64,
    /// Samples inside the sliding window.
    pub window_count: u64,
    /// Window rate in milli-events per second (`window_count` scaled by
    /// the window span, ×1000 so low rates survive integer rendering).
    pub rate_x1000: u64,
}

impl Windowed {
    /// An empty series whose window spans `SLOTS * slot_ms`
    /// milliseconds.
    pub fn new(slot_ms: u64) -> Windowed {
        Windowed {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            ring: std::array::from_fn(|_| Slot {
                tag: AtomicU64::new(u64::MAX),
                count: AtomicU64::new(0),
            }),
            slot_ms: slot_ms.max(1),
        }
    }

    /// The full window span in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.slot_ms * SLOTS as u64
    }

    /// Records one sample at an explicit timestamp (milliseconds since
    /// the registry's epoch). Production callers go through
    /// [`Telemetry`], which supplies the real clock; tests call this
    /// directly to drive window rotation deterministically.
    pub fn record_at(&self, value: u64, now_ms: u64) {
        self.buckets[Histogram::index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);

        let idx = now_ms / self.slot_ms;
        let slot = &self.ring[(idx % SLOTS as u64) as usize];
        let tag = slot.tag.load(Ordering::Acquire);
        if tag != idx {
            // First arrival in a new slot index claims and resets the
            // slot. A loser either sees the new tag (and just counts)
            // or a racing older tag (its sample lands in a slot about
            // to be zeroed — an accepted windowing approximation).
            if slot
                .tag
                .compare_exchange(tag, idx, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                slot.count.store(0, Ordering::Release);
            }
        }
        slot.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Summarizes the series as of `now_ms`.
    pub fn snapshot_at(&self, now_ms: u64) -> SeriesSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);

        let cur = now_ms / self.slot_ms;
        let oldest = cur.saturating_sub(SLOTS as u64 - 1);
        let mut window_count = 0u64;
        for slot in &self.ring {
            let tag = slot.tag.load(Ordering::Acquire);
            if tag != u64::MAX && (oldest..=cur).contains(&tag) {
                window_count += slot.count.load(Ordering::Relaxed);
            }
        }
        // Early in life the window has not filled yet; rate over the
        // elapsed span, not the nominal window, avoids under-reporting.
        let span_ms = self.window_ms().min(now_ms).max(1);

        SeriesSnapshot {
            count,
            mean_us: sum.checked_div(count).unwrap_or(0),
            p50_us: quantile_over(&buckets, count, max, 0.50).unwrap_or(0),
            p90_us: quantile_over(&buckets, count, max, 0.90).unwrap_or(0),
            p99_us: quantile_over(&buckets, count, max, 0.99).unwrap_or(0),
            max_us: max,
            window_count,
            rate_x1000: window_count.saturating_mul(1_000_000) / span_ms,
        }
    }
}

/// The daemon's telemetry registry: one [`Windowed`] series per tracked
/// latency, sharing one wall clock.
#[derive(Debug)]
pub struct Telemetry {
    epoch: Instant,
    /// Store-hit request latency.
    pub hit: Windowed,
    /// Cache-miss request latency (includes the verification).
    pub miss: Windowed,
    /// Coalesced-join request latency.
    pub join: Windowed,
    /// Time a request waits before its verification starts (leader) or
    /// its joined verdict arrives (follower).
    pub queue_wait: Windowed,
    /// Canonicalization + hashing time.
    pub canon: Windowed,
    /// Verdict-store append time.
    pub append: Windowed,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new(DEFAULT_SLOT_MS)
    }
}

impl Telemetry {
    /// A fresh registry; `slot_ms` sizes the sliding window
    /// (`SLOTS * slot_ms`).
    pub fn new(slot_ms: u64) -> Telemetry {
        Telemetry {
            epoch: Instant::now(),
            hit: Windowed::new(slot_ms),
            miss: Windowed::new(slot_ms),
            join: Windowed::new(slot_ms),
            queue_wait: Windowed::new(slot_ms),
            canon: Windowed::new(slot_ms),
            append: Windowed::new(slot_ms),
        }
    }

    /// Milliseconds since the registry was created — the `now_ms` to
    /// feed `record_at`/`snapshot_at`.
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Summarizes every series at the current clock.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let now = self.now_ms();
        TelemetrySnapshot {
            uptime_ms: now,
            window_ms: self.hit.window_ms(),
            hit: self.hit.snapshot_at(now),
            miss: self.miss.snapshot_at(now),
            join: self.join.snapshot_at(now),
            queue_wait: self.queue_wait.snapshot_at(now),
            canon: self.canon.snapshot_at(now),
            append: self.append.snapshot_at(now),
        }
    }
}

/// Point-in-time summary of the whole registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Milliseconds since the registry was created.
    pub uptime_ms: u64,
    /// Sliding-window span shared by every series.
    pub window_ms: u64,
    /// Store-hit latency summary.
    pub hit: SeriesSnapshot,
    /// Cache-miss latency summary.
    pub miss: SeriesSnapshot,
    /// Coalesced-join latency summary.
    pub join: SeriesSnapshot,
    /// Queue-wait summary.
    pub queue_wait: SeriesSnapshot,
    /// Canonicalization-time summary.
    pub canon: SeriesSnapshot,
    /// Store-append-time summary.
    pub append: SeriesSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_percentiles_and_mean() {
        let w = Windowed::new(1_000);
        for v in [10u64, 20, 30, 40, 1000] {
            w.record_at(v, 0);
        }
        let s = w.snapshot_at(0);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean_us, 220);
        assert_eq!(s.max_us, 1000);
        // p50 rank 3 → value 30, bucket [16,31] → upper bound 31.
        assert_eq!(s.p50_us, 31);
        // p99 rank 5 → value 1000, bucket [512,1023] capped at max.
        assert_eq!(s.p99_us, 1000);
    }

    #[test]
    fn window_counts_age_out_slot_by_slot() {
        let w = Windowed::new(1_000); // 6 s window
        for i in 0..6u64 {
            w.record_at(1, i * 1_000); // one sample per slot
        }
        assert_eq!(w.snapshot_at(5_999).window_count, 6);
        // Each new slot boundary expires exactly one old slot.
        assert_eq!(w.snapshot_at(6_500).window_count, 5);
        assert_eq!(w.snapshot_at(8_500).window_count, 3);
        // Far future: everything aged out; lifetime count survives.
        let s = w.snapshot_at(60_000);
        assert_eq!(s.window_count, 0);
        assert_eq!(s.rate_x1000, 0);
        assert_eq!(s.count, 6);
    }

    #[test]
    fn rate_uses_elapsed_span_before_window_fills() {
        let w = Windowed::new(1_000);
        for _ in 0..10 {
            w.record_at(5, 500);
        }
        // 10 samples over 500 ms elapsed → 20/s → 20_000 milli-events/s.
        assert_eq!(w.snapshot_at(500).rate_x1000, 20_000);
        // At the end of the window the denominator is the full span:
        // 10 samples over 5.999 s → ~1.666/s.
        assert_eq!(w.snapshot_at(5_999).rate_x1000, 1_666);
    }

    #[test]
    fn slot_reuse_resets_the_count() {
        let w = Windowed::new(1_000);
        w.record_at(1, 0); // slot index 0 → ring[0]
        w.record_at(1, 6_000); // slot index 6 → ring[0] again, new tag
        let s = w.snapshot_at(6_000);
        // The old slot-0 sample must not leak into the reused slot.
        assert_eq!(s.window_count, 1);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn registry_snapshot_carries_every_series() {
        let t = Telemetry::new(1_000);
        t.hit.record_at(7, t.now_ms());
        t.miss.record_at(9_000, t.now_ms());
        let s = t.snapshot();
        assert_eq!(s.window_ms, 6_000);
        assert_eq!(s.hit.count, 1);
        assert_eq!(s.miss.count, 1);
        assert_eq!(s.join.count, 0);
    }
}
