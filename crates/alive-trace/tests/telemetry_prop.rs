//! Property tests for the telemetry percentile math and the sliding
//! window: quantile estimates must land in the same log2 bucket as the
//! exact order statistic, and window counts must decay to zero once
//! traffic stops.

use alive_trace::hist::Histogram;
use alive_trace::telemetry::{Windowed, SLOTS};
use proptest::prelude::*;

/// The exact `q`-quantile by the same rank convention the histogram
/// uses: the `ceil(q * n)`-th smallest sample (1-based, at least 1).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// p50/p90/p99 from the log2 histogram are upper bounds on the
    /// exact quantiles and never leave the exact quantile's bucket.
    #[test]
    fn quantiles_stay_within_one_bucket_of_exact(
        samples in proptest::collection::vec(any::<u64>(), 1..200),
        q in prop_oneof![Just(0.5), Just(0.9), Just(0.99)],
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let est = h.quantile(q).unwrap();
        prop_assert!(est >= exact, "estimate {est} below exact {exact}");
        prop_assert_eq!(
            Histogram::index(est), Histogram::index(exact),
            "estimate {} in a different bucket than exact {}", est, exact
        );
        prop_assert!(est <= *sorted.last().unwrap());
    }

    /// The windowed series agrees with a plain histogram on lifetime
    /// percentiles regardless of when samples arrive.
    #[test]
    fn windowed_lifetime_percentiles_match_plain_histogram(
        samples in proptest::collection::vec((any::<u64>(), 0u64..100_000), 1..100),
    ) {
        let w = Windowed::new(1_000);
        let mut h = Histogram::new();
        for &(v, t) in &samples {
            w.record_at(v, t);
            h.record(v);
        }
        let s = w.snapshot_at(200_000);
        prop_assert_eq!(s.count, h.count());
        prop_assert_eq!(s.p50_us, h.quantile(0.5).unwrap());
        prop_assert_eq!(s.p90_us, h.quantile(0.9).unwrap());
        prop_assert_eq!(s.p99_us, h.quantile(0.99).unwrap());
        prop_assert_eq!(s.max_us, h.max().unwrap());
    }

    /// Rate decay: a burst is fully inside the window right after it
    /// lands, partially aged after each slot boundary, and gone once a
    /// full window has passed — while lifetime counts never decay.
    #[test]
    fn window_rates_decay_across_boundaries(
        burst in 1usize..50,
        slot_ms in 1u64..1_000,
    ) {
        let w = Windowed::new(slot_ms);
        let window = slot_ms * SLOTS as u64;
        for _ in 0..burst {
            w.record_at(1, 0);
        }
        // Immediately after the burst: everything in-window.
        let now0 = slot_ms / 2;
        let s0 = w.snapshot_at(now0);
        prop_assert_eq!(s0.window_count, burst as u64);
        prop_assert!(s0.rate_x1000 > 0);
        // One full window later: the burst slot has aged out.
        let s1 = w.snapshot_at(window);
        prop_assert_eq!(s1.window_count, 0);
        prop_assert_eq!(s1.rate_x1000, 0);
        prop_assert_eq!(s1.count, burst as u64);
        // Monotone decay: counts never grow as time passes.
        let mut prev = u64::MAX;
        for t in [now0, slot_ms, 2 * slot_ms, window, 2 * window] {
            let cur = w.snapshot_at(t).window_count;
            prop_assert!(cur <= prev);
            prev = cur;
        }
    }
}
