//! Property tests for log2 histogram bucketing.
//!
//! The metrics layer summarizes learned-clause lengths and queue waits
//! with power-of-two buckets; these properties pin down that bucketing
//! round-trips arbitrary `u64` samples (every sample lies inside the
//! bounds of its assigned bucket, and bounds invert index exactly).

use alive_trace::hist::{Histogram, NUM_BUCKETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Round trip: any u64 sample lands in a bucket whose inclusive
    /// bounds contain it.
    #[test]
    fn bucket_bounds_contain_sample(v in any::<u64>()) {
        let i = Histogram::index(v);
        prop_assert!(i < NUM_BUCKETS);
        let (lo, hi) = Histogram::bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
    }

    /// The inverse direction: every bound value of every bucket indexes
    /// back to that bucket (bounds are tight, not merely containing).
    #[test]
    fn bounds_invert_index(i in 0usize..NUM_BUCKETS) {
        let (lo, hi) = Histogram::bounds(i);
        prop_assert_eq!(Histogram::index(lo), i);
        prop_assert_eq!(Histogram::index(hi), i);
    }

    /// Recording preserves count/sum/min/max and places each sample in
    /// exactly one bucket (bucket counts sum to the sample count).
    #[test]
    fn record_accounts_for_every_sample(samples in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let bucket_total: u64 = (0..NUM_BUCKETS).map(|i| h.bucket(i)).sum();
        prop_assert_eq!(bucket_total, samples.len() as u64);
        prop_assert_eq!(h.min(), samples.iter().min().copied());
        prop_assert_eq!(h.max(), samples.iter().max().copied());
        if let Some(q) = h.quantile(1.0) {
            prop_assert_eq!(Some(q), h.max());
        }
    }
}
