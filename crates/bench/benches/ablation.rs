//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **small-width-first type enumeration** (the §3.1.4 counterexample
//!   bias): time-to-counterexample for PR21245 when widths are tried
//!   small-first vs. wide-first;
//! * **CEGIS zero-seeding**: verification of `undef`-bearing transforms
//!   with and without the initial all-zeros instantiation;
//! * **fast vs. default width sets** for corpus-style verification.

use alive::smt::EfConfig;
use alive::{verify, TypeckConfig, VerifyConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_width_bias(c: &mut Criterion) {
    let entry = alive::suite::by_name("PR21245").expect("corpus");
    let mut group = c.benchmark_group("ablation/counterexample-width-order");
    group.sample_size(10);
    for (label, widths) in [
        ("small-first", vec![4u32, 8]),
        ("wide-first", vec![8u32, 4]),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &widths, |b, ws| {
            let cfg = VerifyConfig {
                typeck: TypeckConfig {
                    widths: ws.clone(),
                    ..TypeckConfig::default()
                },
                ..VerifyConfig::default()
            };
            b.iter(|| {
                let v = verify(&entry.transform, &cfg).expect("runs");
                assert!(v.is_invalid());
            })
        });
    }
    group.finish();
}

fn bench_cegis_seeding(c: &mut Criterion) {
    // undef-bearing transforms exercise the ∃∀ CEGIS path.
    let cases = [
        (
            "select-undef",
            "%r = select undef, i8 -1, 0\n=>\n%r = ashr undef, 3",
        ),
        ("xor-undef", "%r = xor i8 %x, undef\n=>\n%r = undef"),
        (
            "add-undef",
            "%a = add i8 %x, undef\n%r = and %a, undef\n=>\n%r = and i8 %x, undef",
        ),
    ];
    let mut group = c.benchmark_group("ablation/cegis-seeding");
    group.sample_size(10);
    for (name, text) in cases {
        let t = alive::parse_transform(text).expect("parses");
        for (label, seed) in [("seeded", true), ("unseeded", false)] {
            group.bench_with_input(
                BenchmarkId::new(name, label),
                &seed,
                |b, &seed_with_zero| {
                    let cfg = VerifyConfig {
                        typeck: TypeckConfig::fast(),
                        ef: EfConfig {
                            seed_with_zero,
                            ..EfConfig::default()
                        },
                    };
                    b.iter(|| {
                        // Valid or not — we only measure the query time.
                        let _ = verify(&t, &cfg).expect("runs");
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_width_sets(c: &mut Criterion) {
    let entry = alive::suite::by_name("AddSub:NotIntro").expect("corpus");
    let mut group = c.benchmark_group("ablation/width-sets");
    group.sample_size(10);
    for (label, cfg) in [
        ("fast-4-8", VerifyConfig::fast()),
        ("default-4-8-16-32", VerifyConfig::default()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| {
                let v = verify(&entry.transform, cfg).expect("runs");
                assert!(v.is_valid());
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_width_bias,
    bench_cegis_seeding,
    bench_width_sets
);
criterion_main!(benches);
