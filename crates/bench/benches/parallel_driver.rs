//! Criterion benchmark: supervised parallel driver throughput, jobs=1
//! vs jobs=4, over a corpus of suite transforms.
//!
//! Two workloads:
//!
//! * `cpu-bound`: every transform verifies at full speed. On a multi-core
//!   host jobs=4 wins roughly linearly; on a single-core container the
//!   workers time-slice one CPU and the numbers instead expose the pool's
//!   coordination overhead (watchdog polling, slot bookkeeping), which
//!   must stay small.
//! * `stall-overlap` (needs `--features fault-injection`): a handful of
//!   queries are injected with the sleep-based `hang` fault, modelling a
//!   solver call that blocks without consuming CPU until its wall-clock
//!   deadline cuts it down — the scenario the worker pool and watchdog
//!   exist for. jobs=1 serializes the stalls (total ≈ work + sum of
//!   deadlines); jobs=4 overlaps them with live verification (total ≈
//!   work + max deadline), so the speedup is visible even on one core.
//!   The summary pass asserts the speedup instead of just printing it.

use alive::verifier::{run_transforms_parallel, DriverConfig, OutcomeKind, PoolConfig};
use alive::{Transform, TypeckConfig};
use criterion::{BenchmarkId, Criterion};
use std::time::Duration;

/// A corpus of real suite transforms, replicated to give the pool
/// enough independent work to overlap.
fn corpus() -> Vec<(String, Transform)> {
    let names = [
        "AndOrXor:DeMorganAnd",
        "AddSub:NotIntro",
        "Shifts:ShlNswAshr",
        "PR21242-fixed",
        "MulDivRem:SDivSelf",
    ];
    let mut out = Vec::new();
    for round in 0..4 {
        for name in names {
            let entry = alive::suite::by_name(name).expect("corpus entry");
            out.push((format!("{name}#{round}"), entry.transform.clone()));
        }
    }
    out
}

/// One attempt per transform, with a wall-clock deadline wide enough for
/// every healthy transform and narrow enough to keep injected stalls
/// bounded.
fn driver_config() -> DriverConfig {
    DriverConfig {
        verify: alive::VerifyConfig {
            typeck: TypeckConfig {
                widths: vec![4, 8],
                ..TypeckConfig::default()
            },
            ..alive::VerifyConfig::default()
        },
        timeout: Some(Duration::from_millis(150)),
        max_retries: 0,
        keep_going: true,
        ..DriverConfig::default()
    }
}

fn pool(jobs: usize) -> PoolConfig {
    PoolConfig {
        jobs,
        ..PoolConfig::default()
    }
}

fn bench_cpu_bound(c: &mut Criterion) {
    let corpus = corpus();
    let config = driver_config();
    let mut group = c.benchmark_group("parallel_driver/cpu-bound");
    group.sample_size(10);
    for jobs in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            let pool = pool(jobs);
            b.iter(|| {
                let report = run_transforms_parallel(&corpus, &config, &pool);
                assert_eq!(report.count(OutcomeKind::Valid), corpus.len());
            })
        });
    }
    group.finish();
}

#[cfg(feature = "fault-injection")]
mod stall {
    use super::*;
    use alive::sat::fault::{self, FailurePlan, Fault, FaultKind, FaultSite};
    use std::time::Instant;

    /// How many queries the corpus issues at the SAT site, measured by a
    /// calibration run under an empty (count-only) fault plan.
    fn sat_queries(corpus: &[(String, Transform)], config: &DriverConfig) -> u64 {
        fault::install(Some(FailurePlan::default()));
        let report = run_transforms_parallel(corpus, config, &pool(1));
        assert_eq!(report.count(OutcomeKind::Valid), corpus.len());
        let seen = fault::queries_seen(FaultSite::Sat);
        fault::install(None);
        seen
    }

    /// Sleep-based hangs at four ordinals spread across the run; each
    /// stalls its transform until the 150 ms attempt deadline.
    fn stall_plan(total_queries: u64) -> FailurePlan {
        FailurePlan {
            faults: (0..4)
                .map(|i| Fault {
                    site: FaultSite::Sat,
                    kind: FaultKind::Hang,
                    at: (total_queries * (2 * i + 1) / 8).max(1),
                })
                .collect(),
        }
    }

    /// One supervised run under the stall plan; every transform must
    /// still be decided or cleanly timed out — never hung or skipped.
    fn run_stalled(
        corpus: &[(String, Transform)],
        config: &DriverConfig,
        plan: &FailurePlan,
        jobs: usize,
    ) {
        fault::install(Some(plan.clone()));
        let report = run_transforms_parallel(corpus, config, &pool(jobs));
        let valid = report.count(OutcomeKind::Valid);
        let unknown = report.count(OutcomeKind::Unknown);
        assert_eq!(valid + unknown, corpus.len());
        assert!(unknown >= 1, "no injected stall landed");
        assert_eq!(report.count(OutcomeKind::Hung), 0);
    }

    pub fn bench_stall_overlap(c: &mut Criterion) {
        let corpus = corpus();
        let config = driver_config();
        let plan = stall_plan(sat_queries(&corpus, &config));

        let mut group = c.benchmark_group("parallel_driver/stall-overlap");
        group.sample_size(5);
        for jobs in [1usize, 4] {
            group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
                b.iter(|| run_stalled(&corpus, &config, &plan, jobs))
            });
        }
        group.finish();

        // Summary pass: best-of-2 wall clock per jobs value, and the
        // acceptance check itself — jobs=4 must beat jobs=1 on the
        // stall-heavy corpus even on a single-core host.
        let best = |jobs: usize| {
            (0..2)
                .map(|_| {
                    let start = Instant::now();
                    run_stalled(&corpus, &config, &plan, jobs);
                    start.elapsed()
                })
                .min()
                .unwrap()
        };
        let serial = best(1);
        let overlapped = best(4);
        fault::install(None);
        println!(
            "bench: parallel_driver/stall-overlap summary        \
             jobs=1 {:.1} ms, jobs=4 {:.1} ms, speedup {:.2}x",
            serial.as_secs_f64() * 1e3,
            overlapped.as_secs_f64() * 1e3,
            serial.as_secs_f64() / overlapped.as_secs_f64(),
        );
        assert!(
            overlapped < serial.mul_f64(0.85),
            "jobs=4 ({overlapped:?}) must measurably beat jobs=1 ({serial:?})"
        );
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_cpu_bound(&mut criterion);
    #[cfg(feature = "fault-injection")]
    stall::bench_stall_overlap(&mut criterion);
}
