//! Criterion benchmark: peephole-pass throughput over the synthetic
//! workload (the §6.4 compile-time proxy), with full vs. one-third corpus.

use alive::opt::{generate_workload, Peephole, WorkloadConfig};
use bench::pass_templates;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_pass(c: &mut Criterion) {
    let templates = pass_templates();
    let third: Vec<_> = templates
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, t)| t.clone())
        .collect();
    let config = WorkloadConfig {
        functions: 60,
        ..WorkloadConfig::default()
    };
    let funcs = generate_workload(&config, &templates);
    let insts: usize = funcs.iter().map(|f| f.len()).sum();

    let mut group = c.benchmark_group("peephole");
    group.sample_size(10);
    group.throughput(Throughput::Elements(insts as u64));
    for (label, set) in [("full", templates.clone()), ("third", third)] {
        let pass = Peephole::new(set);
        group.bench_with_input(BenchmarkId::new("corpus", label), &pass, |b, pass| {
            b.iter(|| {
                let mut work = funcs.clone();
                pass.run_module(&mut work)
            })
        });
    }
    group.finish();

    let mut group2 = c.benchmark_group("workload-gen");
    group2.sample_size(10);
    group2.bench_function("generate-60-functions", |b| {
        b.iter(|| generate_workload(&config, &templates))
    });
    group2.finish();
}

criterion_group!(benches, bench_pass);
criterion_main!(benches);
