//! Criterion benchmark: verification time per instruction category and
//! bitwidth (the quantitative backbone of §6.1's timing discussion).

use alive::{verify, TypeckConfig, VerifyConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn config_at(width: u32) -> VerifyConfig {
    VerifyConfig {
        typeck: TypeckConfig {
            widths: vec![width],
            ..TypeckConfig::default()
        },
        ..VerifyConfig::default()
    }
}

fn bench_verify(c: &mut Criterion) {
    let cases = [
        ("bitwise", "AndOrXor:DeMorganAnd"),
        ("addsub", "AddSub:NotIntro"),
        ("shift", "Shifts:ShlNswAshr"),
        ("mul", "PR21242-fixed"),
        ("div", "MulDivRem:SDivSelf"),
    ];
    let mut group = c.benchmark_group("verify");
    group.sample_size(10);
    for (label, name) in cases {
        let entry = alive::suite::by_name(name).expect("corpus entry");
        for width in [4u32, 8, 16] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("i{width}")),
                &width,
                |b, &w| {
                    let cfg = config_at(w);
                    b.iter(|| {
                        let v = verify(&entry.transform, &cfg).expect("verifies");
                        assert!(v.is_valid());
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_counterexample(c: &mut Criterion) {
    // Finding a bug (SAT) is usually faster than proving absence (UNSAT).
    let entry = alive::suite::by_name("PR21245").expect("corpus entry");
    c.bench_function("counterexample/PR21245", |b| {
        let cfg = config_at(4);
        b.iter(|| {
            let v = verify(&entry.transform, &cfg).expect("runs");
            assert!(v.is_invalid());
        })
    });
}

criterion_group!(benches, bench_verify, bench_counterexample);
criterion_main!(benches);
