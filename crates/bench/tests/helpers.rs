//! Tests for the bench-harness helpers.

use bench::{log_bar, pass_templates};

#[test]
fn log_bar_is_monotone_and_bounded() {
    let max = 10_000;
    let mut prev = 0;
    for count in [0u64, 1, 10, 100, 1_000, 10_000] {
        let bar = log_bar(count, max).len();
        assert!(bar >= prev, "bar length must grow with count");
        assert!(bar <= 51);
        prev = bar;
    }
    assert!(log_bar(0, max).is_empty());
    assert!(log_bar(max, max).len() >= 50);
}

#[test]
fn pass_templates_excludes_memory_ops() {
    let ts = pass_templates();
    assert!(ts.len() > 100);
    for (name, t) in &ts {
        assert!(
            !t.source
                .iter()
                .chain(&t.target)
                .any(|s| s.inst.is_memory_op()),
            "{name} has memory ops"
        );
    }
}
