//! Shared helpers for the reproduction binaries and Criterion benches.

use alive::suite::SuiteEntry;
use alive::{Transform, Verdict, VerifyConfig};

/// Verifies one corpus entry, returning whether a bug was found.
///
/// # Panics
///
/// Panics if verification errors out (corpus entries are well-formed).
pub fn entry_found_bug(entry: &SuiteEntry, config: &VerifyConfig) -> bool {
    match alive::verify(&entry.transform, config) {
        Ok(v) => v.is_invalid(),
        Err(e) => panic!("{}: {e}", entry.name),
    }
}

/// Verifies one corpus entry, returning the verdict.
///
/// # Panics
///
/// Panics if verification errors out.
pub fn entry_verdict(entry: &SuiteEntry, config: &VerifyConfig) -> Verdict {
    alive::verify(&entry.transform, config).unwrap_or_else(|e| panic!("{}: {e}", entry.name))
}

/// The corpus as (name, transform) pairs for the peephole pass, restricted
/// to entries the interpreted matcher supports (no memory ops).
pub fn pass_templates() -> Vec<(String, Transform)> {
    alive::suite::corpus()
        .into_iter()
        .filter(|e| {
            !e.transform
                .source
                .iter()
                .chain(&e.transform.target)
                .any(|s| s.inst.is_memory_op())
        })
        .map(|e| (e.name, e.transform))
        .collect()
}

/// A one-line histogram bar for terminal output (log scale).
pub fn log_bar(count: u64, max: u64) -> String {
    if count == 0 || max == 0 {
        return String::new();
    }
    let ratio = ((count as f64).ln_1p() / (max as f64).ln_1p() * 50.0).ceil() as usize;
    "#".repeat(ratio.max(1))
}
