//! Fig. 8 reproduction: all eight incorrect InstCombine transformations
//! found during the development of Alive must be rejected, and their
//! corrected versions must verify.
//!
//! Run with: `cargo run --release -p bench --bin fig8`

use alive::{Verdict, VerifyConfig};
use bench::entry_verdict;

fn main() {
    let config = VerifyConfig::fast();

    println!("{:12} {:>10}   failure", "bug", "verdict");
    println!("{}", "-".repeat(60));
    for entry in alive::suite::buggy() {
        match entry_verdict(&entry, &config) {
            Verdict::Invalid(cex) => {
                println!(
                    "{:12} {:>10}   {} (i{} %{})",
                    entry.name, "rejected", cex.kind, cex.root_width, cex.root
                );
            }
            other => panic!("{} must be rejected, got {other}", entry.name),
        }
    }

    println!();
    println!("{:18} {:>10}", "fixed version", "verdict");
    println!("{}", "-".repeat(40));
    for entry in alive::suite::corpus()
        .into_iter()
        .filter(|e| e.name.ends_with("-fixed"))
    {
        match entry_verdict(&entry, &config) {
            Verdict::Valid { typings_checked } => {
                println!(
                    "{:18} {:>10}  ({typings_checked} typings)",
                    entry.name, "valid"
                )
            }
            other => panic!("{} must verify, got {other}", entry.name),
        }
    }
    println!("\n8/8 bugs rediscovered; 8/8 fixes verified (paper: 8 bugs, all confirmed & fixed)");
}
