//! §6.4 (execution time) reproduction.
//!
//! The paper reports code compiled by LLVM+Alive (with only a third of
//! InstCombine translated) runs ~3% slower on SPEC than stock LLVM -O3,
//! with per-benchmark swings (+7% gcc, -10% equake). Our proxy: the
//! abstract execution cost (weighted instruction count) of the workload
//! after optimizing with the full corpus vs. the one-third subset vs. no
//! optimization. Expected shape: both configurations beat unoptimized
//! code; the one-third configuration leaves some cost on the table.
//!
//! Run with: `cargo run --release -p bench --bin exec_time [n_functions]`

use alive::opt::{generate_workload, Function, Peephole, WorkloadConfig};
use bench::pass_templates;

fn optimized_cost(templates: Vec<(String, alive::Transform)>, funcs: &[Function]) -> u64 {
    let pass = Peephole::new(templates);
    let mut work = funcs.to_vec();
    pass.run_module(&mut work);
    work.iter().map(Function::static_cost).sum()
}

fn main() {
    let n_functions: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(800);
    let templates = pass_templates();
    let config = WorkloadConfig {
        functions: n_functions,
        ..WorkloadConfig::default()
    };
    let funcs = generate_workload(&config, &templates);

    let baseline: u64 = funcs.iter().map(Function::static_cost).sum();
    let third: Vec<_> = templates
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, t)| t.clone())
        .collect();
    let full_cost = optimized_cost(templates.clone(), &funcs);
    let third_cost = optimized_cost(third, &funcs);

    println!("abstract execution cost of the workload (lower is better)\n");
    println!("{:28} {:>12}", "configuration", "cost");
    println!("{:28} {:>12}", "unoptimized", baseline);
    println!("{:28} {:>12}", "full corpus (stock LLVM)", full_cost);
    println!("{:28} {:>12}", "one-third (LLVM+Alive)", third_cost);

    let slowdown = 100.0 * (third_cost as f64 - full_cost as f64) / full_cost as f64;
    println!(
        "\nLLVM+Alive configuration is {slowdown:.1}% slower than the full corpus \
         (paper: ~3% slower on SPEC)"
    );
    println!(
        "both optimize well below baseline: full saves {:.1}%, third saves {:.1}%",
        100.0 * (baseline - full_cost) as f64 / baseline as f64,
        100.0 * (baseline - third_cost) as f64 / baseline as f64
    );
}
