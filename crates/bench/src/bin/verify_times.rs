//! §6.1 (verification time) reproduction.
//!
//! The paper: "Alive usually takes a few seconds to verify the correctness
//! of a transformation ... for some transformations involving
//! multiplication and division instructions, Alive can take several hours
//! or longer to verify the larger bitwidths", which the authors work
//! around by limiting operand bitwidths. This binary measures verification
//! time for representative optimizations per category at growing widths;
//! the expected shape is that mul/div verification cost grows much faster
//! with width than bitwise/add/shift verification.
//!
//! Run with: `cargo run --release -p bench --bin verify_times [max_width]`

use alive::smt::EfConfig;
use alive::{verify, TypeckConfig, VerifyConfig};
use std::io::Write;
use std::time::Instant;

fn main() {
    let max_width: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);
    let widths: Vec<u32> = [4u32, 8, 12, 16, 20, 24, 32]
        .into_iter()
        .filter(|w| *w <= max_width)
        .collect();

    // One representative per instruction category.
    let cases = [
        ("bitwise (AndOrXor:DeMorganAnd)", "AndOrXor:DeMorganAnd"),
        ("add/sub (AddSub:NotIntro)", "AddSub:NotIntro"),
        ("shift (Shifts:ShlNswAshr)", "Shifts:ShlNswAshr"),
        ("mul (PR21242-fixed)", "PR21242-fixed"),
        ("div (MulDivRem:SDivSelf)", "MulDivRem:SDivSelf"),
        ("div-chain (PR21245-fixed)", "PR21245-fixed"),
    ];

    print!("{:34}", "optimization \\ width");
    for w in &widths {
        print!(" {:>9}", format!("i{w}"));
    }
    println!();

    for (label, name) in cases {
        let entry = alive::suite::by_name(name).expect("corpus entry");
        print!("{label:34}");
        for &w in &widths {
            // A conflict budget keeps pathological mul/div queries from
            // running for hours (the paper's own observation); exhausted
            // budgets print as "timeout".
            let config = VerifyConfig {
                typeck: TypeckConfig {
                    widths: vec![w],
                    ..TypeckConfig::default()
                },
                ef: EfConfig {
                    conflict_budget: Some(300_000),
                    ..EfConfig::default()
                },
            };
            let start = Instant::now();
            let v = verify(&entry.transform, &config);
            let dt = start.elapsed();
            match v {
                Ok(v) if v.is_valid() => print!(" {:>8.2?}", dt),
                Ok(alive::Verdict::Unknown { .. }) => print!(" {:>9}", "timeout"),
                Ok(_) => print!(" {:>9}", "cex!"),
                Err(_) => print!(" {:>9}", "n/a"),
            }
            let _ = std::io::stdout().flush();
        }
        println!();
    }
    println!(
        "\nexpected shape (paper §6.1): seconds at small widths everywhere; \
         mul/div cost grows sharply with width, which the paper works around \
         by bounding operand bitwidths"
    );
}
