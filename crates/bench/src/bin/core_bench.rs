//! Core verification benchmark: one solver-backed sweep over the paper
//! corpus, written to `BENCH_core.json` — the tracked trajectory for
//! per-transform verification time.
//!
//! Where `serve_bench` measures the *cache* (hit vs. miss latency), this
//! measures the *verifier*: every corpus transform is verified fresh, no
//! store, and the per-transform wall times summarize to the percentiles
//! the repo tracks across PRs. The config matches the CI smoke profile
//! (fast widths, bounded conflicts, escalating retries) so numbers are
//! comparable run-over-run.
//!
//! Run with: `cargo run --release -p bench [out.json] [limit]`
//! (`core_bench` is the bench crate's default binary.)

use alive::verifier::{verify_single, DriverConfig};
use alive::VerifyConfig;
use std::time::Instant;

fn percentile(sorted: &[u64], p: usize) -> u64 {
    sorted[(sorted.len() - 1) * p / 100]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_core.json".to_string());
    let limit: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(usize::MAX);

    let corpus: Vec<_> = alive::suite::full_corpus()
        .into_iter()
        .take(limit)
        .collect();
    let driver = DriverConfig {
        verify: VerifyConfig::fast(),
        conflict_budget: Some(50),
        max_retries: 2,
        ..DriverConfig::default()
    };

    let sweep = Instant::now();
    let mut rows: Vec<(String, String, u64, u64)> = Vec::with_capacity(corpus.len());
    for entry in &corpus {
        let start = Instant::now();
        let outcome = verify_single(&entry.name, &entry.transform, &driver);
        rows.push((
            entry.name.clone(),
            outcome.kind.as_str().to_string(),
            start.elapsed().as_micros() as u64,
            outcome.conflicts,
        ));
    }
    let wall_us = sweep.elapsed().as_micros() as u64;

    let mut micros: Vec<u64> = rows.iter().map(|r| r.2).collect();
    micros.sort_unstable();
    let total_us: u64 = micros.iter().sum();
    let mut verdicts = std::collections::BTreeMap::<&str, usize>::new();
    for (_, verdict, _, _) in &rows {
        *verdicts.entry(verdict).or_default() += 1;
    }
    let verdict_json: Vec<String> = verdicts
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();

    // The tracked trajectory keeps the slowest transforms by name so a
    // regression points at a specific transform, not just a percentile.
    let mut slowest: Vec<_> = rows.iter().collect();
    slowest.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    let slowest_json: Vec<String> = slowest
        .iter()
        .take(10)
        .map(|(name, verdict, us, conflicts)| {
            format!(
                "{{\"name\": \"{name}\", \"verdict\": \"{verdict}\", \"wall_us\": {us}, \
                 \"conflicts\": {conflicts}}}"
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"schema\": \"alive-bench-core/v1\",\n  \"corpus\": {},\n  \
         \"wall_us\": {wall_us},\n  \"total_us\": {total_us},\n  \
         \"mean_us\": {},\n  \"p50_us\": {},\n  \"p90_us\": {},\n  \
         \"p99_us\": {},\n  \"max_us\": {},\n  \"verdicts\": {{{}}},\n  \
         \"slowest\": [\n    {}\n  ]\n}}\n",
        corpus.len(),
        total_us / micros.len().max(1) as u64,
        percentile(&micros, 50),
        percentile(&micros, 90),
        percentile(&micros, 99),
        micros.last().copied().unwrap_or(0),
        verdict_json.join(", "),
        slowest_json.join(",\n    "),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_core.json");
    print!("{json}");
    println!(
        "core sweep: {} transform(s) in {:.2}s, written to {out_path}",
        corpus.len(),
        wall_us as f64 / 1e6
    );
}
