//! §6.4 (compile time) reproduction.
//!
//! The paper reports that LLVM+Alive compiles SPEC ~7% *faster* than stock
//! LLVM because it runs only the translated third of InstCombine. Our
//! proxy: wall time of the peephole pass over the same workload with
//! (a) the full corpus, (b) a one-third subset (the "LLVM+Alive"
//! configuration), and (c) no optimizations. Expected shape: pass time
//! scales with the number of installed optimizations, so the one-third
//! configuration compiles faster.
//!
//! Run with: `cargo run --release -p bench --bin compile_time [n_functions]`

use alive::opt::{generate_workload, Peephole, WorkloadConfig};
use bench::pass_templates;
use std::time::Instant;

fn time_pass(
    label: &str,
    templates: Vec<(String, alive::Transform)>,
    funcs: &[alive::opt::Function],
) -> f64 {
    let pass = Peephole::new(templates);
    let mut work = funcs.to_vec();
    let start = Instant::now();
    let stats = pass.run_module(&mut work);
    let dt = start.elapsed().as_secs_f64();
    println!(
        "{label:24} {:>4} opts   {:>8.3}s   {:>7} rewrites",
        pass.len(),
        dt,
        stats.total_fires()
    );
    dt
}

fn main() {
    let n_functions: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(800);
    let templates = pass_templates();
    let config = WorkloadConfig {
        functions: n_functions,
        ..WorkloadConfig::default()
    };
    let funcs = generate_workload(&config, &templates);
    println!(
        "workload: {} functions, {} instructions\n",
        funcs.len(),
        funcs.iter().map(|f| f.len()).sum::<usize>()
    );

    let third: Vec<_> = templates
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, t)| t.clone())
        .collect();

    let full = time_pass("full InstCombine corpus", templates.clone(), &funcs);
    let partial = time_pass("one-third (LLVM+Alive)", third, &funcs);
    let none = time_pass("no peephole pass", Vec::new(), &funcs);

    println!(
        "\none-third configuration is {:.0}% faster than the full corpus \
         (paper: LLVM+Alive ~7% faster than stock LLVM end-to-end)",
        100.0 * (full - partial) / full
    );
    println!(
        "(pass overhead over no-op traversal: full {:.2}x, third {:.2}x)",
        full / none.max(1e-9),
        partial / none.max(1e-9)
    );
}
