//! Fig. 5 reproduction: the counterexample Alive prints for the incorrect
//! transformation reported as LLVM PR21245.
//!
//! The paper's output (verbatim):
//!
//! ```text
//! ERROR: Mismatch in values of i4 %r
//! Example:
//! %X i4 = 0xF (15, -1)
//! C1 i4 = 0x3 (3)
//! C2 i4 = 0x8 (8, -8)
//! %s i4 = 0x8 (8, -8)
//! Source value: 0x1 (1)
//! Target value: 0xF (15, -1)
//! ```
//!
//! Counterexamples are biased toward 4- and 8-bit widths (§3.1.4) by
//! enumerating those type assignments first; the concrete witness the SAT
//! solver picks may differ from the paper's, but it is always an i4 value
//! mismatch for this bug.
//!
//! Run with: `cargo run --release -p bench --bin fig5`

use alive::{verify, Verdict, VerifyConfig};

fn main() {
    let entry = alive::suite::by_name("PR21245").expect("PR21245 in corpus");
    println!("Transformation (paper Fig. 5 / LLVM PR21245):\n");
    println!("{}", entry.transform);
    match verify(&entry.transform, &VerifyConfig::default()).expect("verification runs") {
        Verdict::Invalid(cex) => {
            println!("{cex}");
            assert_eq!(cex.root_width, 4, "counterexample should be at i4");
            assert_eq!(cex.root, "r");
            println!("(type assignment: {})", cex.typing_summary);
        }
        other => panic!("PR21245 must be rejected, got: {other}"),
    }
}
