//! Fig. 9 reproduction: how many times each Alive optimization fires while
//! "compiling" a workload.
//!
//! The paper compiles the LLVM nightly test suite + SPEC (~1M LoC) with
//! LLVM+Alive and counts invocations: ~87,000 total, the top ten
//! optimizations covering ~70%, a long tail, and only 159 of 334
//! optimizations ever firing. Our substrate compiles a deterministic
//! synthetic workload with the verified corpus; the reproduced *shape* is
//! the same: a handful of hot optimizations dominate, a long tail follows,
//! and a large fraction never fires.
//!
//! Run with: `cargo run --release -p bench --bin fig9 [n_functions]`

use alive::opt::{generate_workload, Peephole, WorkloadConfig};
use bench::{log_bar, pass_templates};
use std::time::Instant;

fn main() {
    let n_functions: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000);

    let templates = pass_templates();
    let config = WorkloadConfig {
        functions: n_functions,
        ..WorkloadConfig::default()
    };
    println!(
        "generating workload: {} functions, ~{} instructions ...",
        config.functions,
        config.functions * (config.planted_per_function * 2 + config.filler_per_function)
    );
    let mut funcs = generate_workload(&config, &templates);
    let total_insts: usize = funcs.iter().map(|f| f.len()).sum();

    let pass = Peephole::new(templates.clone());
    println!(
        "running the peephole pass with {} verified optimizations over {} instructions ...\n",
        pass.len(),
        total_insts
    );
    let start = Instant::now();
    let stats = pass.run_module(&mut funcs);
    let elapsed = start.elapsed();

    let sorted = stats.sorted_counts();
    let max = sorted.first().map(|x| x.1).unwrap_or(0);
    println!("{:>4} {:>9}  optimization", "#", "fires");
    for (rank, (name, count)) in sorted.iter().enumerate() {
        println!(
            "{:>4} {:>9}  {:28} {}",
            rank + 1,
            count,
            name,
            log_bar(*count, max)
        );
    }

    let total = stats.total_fires();
    let top10: u64 = sorted.iter().take(10).map(|x| x.1).sum();
    println!("\ntotal invocations:        {total}   (paper: ~87,000 on ~1M LoC)");
    println!(
        "top-10 share:             {:.0}%   (paper: ~70%)",
        100.0 * top10 as f64 / total.max(1) as f64
    );
    println!(
        "optimizations triggered:  {} of {}   (paper: 159 of 334)",
        sorted.len(),
        pass.len()
    );
    println!("pass wall time:           {:.2?}", elapsed);
}
