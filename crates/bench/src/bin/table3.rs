//! Table 3 reproduction: per-InstCombine-file optimization counts,
//! translations, and bugs found.
//!
//! The paper translated 334 of 1,028 InstCombine optimizations and found
//! 8 bugs (2 in AddSub, 6 in MulDivRem). This binary verifies our corpus
//! — which includes the exact Fig. 8 bugs — and prints our counts next to
//! the paper's. The expected shape: bugs concentrate in MulDivRem (the
//! "buggiest file"), with the rest of the corpus verifying clean.
//!
//! Run with: `cargo run --release -p bench --bin table3`

use alive::suite::{full_corpus, InstCombineFile};
use alive::VerifyConfig;
use bench::entry_found_bug;
use std::time::Instant;

fn main() {
    let config = VerifyConfig::fast();
    let corpus = full_corpus();

    println!("Table 3: InstCombine optimizations translated to Alive and bugs found");
    println!("(paper numbers in parentheses; verification at widths {{4,8}})\n");
    println!(
        "{:17} {:>14} {:>18} {:>14}",
        "File", "# opts.", "# translated", "# bugs"
    );

    let start = Instant::now();
    let mut total_translated = 0;
    let mut total_bugs = 0;
    let mut total_expected = 0;
    for file in InstCombineFile::all() {
        let entries: Vec<_> = corpus.iter().filter(|e| e.file == file).collect();
        let translated = entries.len();
        let mut bugs = 0;
        let mut expected_bugs = 0;
        for e in &entries {
            let found = entry_found_bug(e, &config);
            if found {
                bugs += 1;
            }
            if e.expected_bug {
                expected_bugs += 1;
            }
            assert_eq!(
                found, e.expected_bug,
                "{}: verifier disagrees with expectation",
                e.name
            );
        }
        total_translated += translated;
        total_bugs += bugs;
        total_expected += expected_bugs;
        println!(
            "{:17} {:>8} ({:3}) {:>11} ({:3}) {:>9} ({:2})",
            file.name(),
            "-",
            file.paper_total(),
            translated,
            file.paper_translated(),
            bugs,
            file.paper_bugs(),
        );
    }
    println!(
        "{:17} {:>8} ({:3}) {:>11} ({:3}) {:>9} ({:2})",
        "Total", "-", 1028, total_translated, 334, total_bugs, 8
    );
    println!(
        "\n{} entries verified in {:.1}s; all {} seeded Fig. 8 bugs rediscovered, \
         0 false positives",
        total_translated,
        start.elapsed().as_secs_f64(),
        total_expected
    );
}
