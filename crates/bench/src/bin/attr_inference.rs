//! §6.3 reproduction: attribute inference over the corpus.
//!
//! The paper ran inference on all 334 translated optimizations: the
//! precondition could be weakened for 1 and the postcondition strengthened
//! for 70 (21%), with AddSub, MulDivRem and Shifts around 40% each. This
//! binary runs the same inference over our corpus and reports per-file and
//! total rates.
//!
//! Run with: `cargo run --release -p bench --bin attr_inference`

use alive::suite::InstCombineFile;
use alive::{infer_attributes, VerifyConfig};
use std::time::Instant;

fn main() {
    let config = VerifyConfig::fast();
    let corpus: Vec<_> = alive::suite::corpus();

    println!("Attribute inference over the corpus (paper §6.3)\n");
    println!(
        "{:17} {:>8} {:>12} {:>14} {:>12}",
        "File", "opts", "weakened", "strengthened", "% strength."
    );

    let start = Instant::now();
    let mut tot = 0usize;
    let mut tot_weak = 0usize;
    let mut tot_strong = 0usize;
    for file in InstCombineFile::all() {
        let mut n = 0;
        let mut weak = 0;
        let mut strong = 0;
        for e in corpus.iter().filter(|e| e.file == file) {
            // Inference only makes sense for correct opts with flag space.
            match infer_attributes(&e.transform, &config) {
                Ok(r) => {
                    n += 1;
                    if r.pre_weakened {
                        weak += 1;
                    }
                    if r.post_strengthened {
                        strong += 1;
                    }
                }
                Err(_) => {
                    // No flag positions / budget: count as analyzed without
                    // change.
                    n += 1;
                }
            }
        }
        tot += n;
        tot_weak += weak;
        tot_strong += strong;
        println!(
            "{:17} {:>8} {:>12} {:>14} {:>11.0}%",
            file.name(),
            n,
            weak,
            strong,
            100.0 * strong as f64 / n.max(1) as f64
        );
    }
    println!(
        "{:17} {:>8} {:>12} {:>14} {:>11.0}%",
        "Total",
        tot,
        tot_weak,
        tot_strong,
        100.0 * tot_strong as f64 / tot.max(1) as f64
    );
    println!(
        "\n(paper: 1 weakened precondition, 70/334 = 21% strengthened postconditions;\n\
         AddSub/MulDivRem/Shifts each around 40%)"
    );
    println!("elapsed: {:.1}s", start.elapsed().as_secs_f64());
}
