//! Serving benchmark: cache hit latency, miss latency, and the corpus
//! dedupe ratio, written to `BENCH_serve.json`.
//!
//! The serve cache's pitch is that a warm daemon answers a re-submitted
//! transform in microseconds instead of re-running the solver. This bench
//! measures that directly, in-process (no transport noise):
//!
//! 1. **cold pass** — the full paper corpus against a fresh store; every
//!    distinct canonical form pays for a real verification (miss), and
//!    canonical duplicates within the corpus already hit (the dedupe
//!    ratio).
//! 2. **warm pass** — the same corpus again; every request must be a
//!    cache hit, and the pass must run ≥10x faster than the cold one.
//! 3. **compaction pass** — the store is bloated with 3x superseding
//!    churn (every record re-appended twice; replay is last-record-wins,
//!    so the copies are dead), then compacted; store bytes and
//!    warm-reopen time are recorded before and after — the numbers
//!    behind the store-growth guidance in `docs/SERVING.md`.
//!
//! Run with: `cargo run --release -p bench --bin serve_bench [out.json] [limit]`

use alive::serve::{ServeConfig, Server};
use alive::verifier::DriverConfig;
use alive::VerifyConfig;
use std::time::Instant;

/// Latency summary of one pass, in microseconds.
struct Lat {
    count: usize,
    total_us: u64,
    mean_us: u64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    max_us: u64,
}

fn summarize(mut micros: Vec<u64>) -> Lat {
    micros.sort_unstable();
    let count = micros.len();
    let total_us: u64 = micros.iter().sum();
    let pct = |p: usize| micros[(count - 1) * p / 100];
    Lat {
        count,
        total_us,
        mean_us: total_us / count.max(1) as u64,
        p50_us: pct(50),
        p90_us: pct(90),
        p99_us: pct(99),
        max_us: *micros.last().unwrap_or(&0),
    }
}

fn render(l: &Lat) -> String {
    format!(
        "{{\"count\": {}, \"total_us\": {}, \"mean_us\": {}, \"p50_us\": {}, \
         \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
        l.count, l.total_us, l.mean_us, l.p50_us, l.p90_us, l.p99_us, l.max_us
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let limit: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(usize::MAX);

    let corpus: Vec<_> = alive::suite::full_corpus()
        .into_iter()
        .take(limit)
        .collect();
    let distinct = corpus
        .iter()
        .map(|e| alive::ir::canonical_hash(&e.transform))
        .collect::<std::collections::HashSet<_>>()
        .len();

    let dir = std::env::temp_dir().join(format!("alive-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    // The paper corpus has a handful of solver-hostile mul/div queries; a
    // conflict budget keeps the cold pass honest-but-bounded, exactly like
    // the CI budget smoke run. Bounded verdicts cache like any other.
    let config = ServeConfig {
        driver: DriverConfig {
            verify: VerifyConfig::fast(),
            conflict_budget: Some(50),
            max_retries: 2,
            ..DriverConfig::default()
        },
        store_path: dir.join("store.jsonl"),
        ..Default::default()
    };
    let (server, _how) = Server::open(config).expect("open store");

    let run_pass = |label: &str| -> (Vec<(u64, bool)>, usize, u64) {
        let pass = Instant::now();
        let mut timings = Vec::with_capacity(corpus.len());
        let mut hits = 0usize;
        for entry in &corpus {
            let start = Instant::now();
            let answer = server.check(&entry.name, &entry.transform);
            timings.push((start.elapsed().as_micros() as u64, answer.cached));
            hits += usize::from(answer.cached);
        }
        let wall = pass.elapsed();
        println!(
            "{label}: {} transform(s), {} hit(s), {:.2}s",
            corpus.len(),
            hits,
            wall.as_secs_f64()
        );
        (timings, hits, wall.as_micros() as u64)
    };

    let (cold, cold_hits, cold_wall_us) = run_pass("cold pass");
    let (warm, warm_hits, warm_wall_us) = run_pass("warm pass");

    // Cold-pass hits are canonical duplicates inside the corpus itself.
    let dedupe_ratio = cold_hits as f64 / corpus.len().max(1) as f64;
    // Cold-pass misses are the real verifications; cold-pass hits count
    // with the warm numbers — both are answered from the store.
    let mut miss_us = Vec::new();
    let mut hit_us = Vec::new();
    for (us, cached) in cold.into_iter().chain(warm) {
        if cached {
            hit_us.push(us);
        } else {
            miss_us.push(us);
        }
    }
    let miss = summarize(miss_us);
    let hit = summarize(hit_us);
    let speedup = cold_wall_us as f64 / warm_wall_us.max(1) as f64;

    // Compaction pass: release the store lock, inject 3x superseding
    // churn, and measure size + warm-reopen latency around the rewrite.
    drop(server);
    let store_path = dir.join("store.jsonl");
    let text = std::fs::read_to_string(&store_path).expect("read store");
    let records: Vec<&str> = text.lines().skip(1).collect();
    let mut bloated = text.clone();
    for _ in 0..2 {
        for r in &records {
            bloated.push_str(r);
            bloated.push('\n');
        }
    }
    std::fs::write(&store_path, &bloated).expect("bloat store");

    let fingerprint = alive::verifier::config_fingerprint(&VerifyConfig::fast());
    let reopen = |label: &str| -> (u64, f64) {
        let bytes = std::fs::metadata(&store_path)
            .expect("store metadata")
            .len();
        let start = Instant::now();
        let (store, _how) = alive::verifier::VerdictStore::open(&store_path, fingerprint, 0, None)
            .expect("warm reopen");
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        drop(store);
        println!("{label}: {bytes} bytes, warm reopen {ms:.3}ms");
        (bytes, ms)
    };
    let (bytes_pre, reopen_ms_pre) = reopen("pre-compact");
    let report = alive::verifier::compact_store(&store_path).expect("compact");
    let (bytes_post, reopen_ms_post) = reopen("post-compact");
    assert!(
        bytes_post < bytes_pre,
        "compaction must shrink a store with dead records ({bytes_pre} -> {bytes_post})"
    );

    let json = format!(
        "{{\n  \"schema\": \"alive-bench-serve/v3\",\n  \"corpus\": {},\n  \
         \"distinct_canonical\": {distinct},\n  \"dedupe_ratio\": {dedupe_ratio:.4},\n  \
         \"cold_pass_hits\": {cold_hits},\n  \"warm_pass_hits\": {warm_hits},\n  \
         \"cold_wall_us\": {cold_wall_us},\n  \"warm_wall_us\": {warm_wall_us},\n  \
         \"warm_speedup\": {speedup:.1},\n  \"miss\": {},\n  \"hit\": {},\n  \
         \"store\": {{\"bytes_pre_compact\": {bytes_pre}, \
         \"reopen_ms_pre_compact\": {reopen_ms_pre:.3}, \
         \"bytes_post_compact\": {bytes_post}, \
         \"reopen_ms_post_compact\": {reopen_ms_post:.3}, \
         \"replayed\": {}, \"live\": {}, \"dropped\": {}}}\n}}\n",
        corpus.len(),
        render(&miss),
        render(&hit),
        report.replayed,
        report.live,
        report.dropped,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    print!("{json}");
    println!("written to {out_path}");

    let _ = std::fs::remove_dir_all(&dir);
    // A warm daemon must answer the whole corpus from cache; anything
    // else means the canonical identity broke between passes.
    assert_eq!(
        warm_hits,
        corpus.len(),
        "warm pass was not fully cached ({warm_hits}/{})",
        corpus.len()
    );
}
